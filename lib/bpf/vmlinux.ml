open Ds_elf
open Ds_ksrc

type tracepoint = {
  vtp_event : string;
  vtp_class : string;
  vtp_func : string option;
  vtp_fmt : string;
}

type t = {
  v_img : Elf.t;
  v_version : Version.t;
  v_flavor : Config.flavor;
  v_gcc : int * int;
  v_arch : Config.arch;
  v_btf : Ds_btf.Btf.t;
  v_tracepoints : tracepoint list;
  v_syscalls : string list;
}

exception Bad_vmlinux of string

let arch_of_machine = function
  | Elf.X86_64 -> Config.X86
  | Elf.Aarch64 -> Config.Arm64
  | Elf.Arm -> Config.Arm32
  | Elf.Ppc64 -> Config.Ppc
  | Elf.Riscv64 -> Config.Riscv
  | Elf.Bpf -> raise (Bad_vmlinux "BPF object is not a kernel image")

(* "Linux version 5.4.0-generic (...) (gcc version 9.2.0 (Ubuntu)) ..." *)
let parse_banner s =
  let fail () = raise (Bad_vmlinux ("unparsable banner: " ^ s)) in
  let version, flavor =
    try
      Scanf.sscanf s "Linux version %d.%d.%d-%s@ " (fun major minor _patch rest ->
          (Version.v major minor, rest))
    with Scanf.Scan_failure _ | End_of_file -> fail ()
  in
  let flavor =
    match
      List.find_opt (fun f -> Config.flavor_to_string f = flavor) Config.flavors
    with
    | Some f -> f
    | None -> fail ()
  in
  let gcc =
    let marker = "gcc version " in
    let at =
      match Ds_util.Strutil.find_sub s ~sub:marker with
      | Some i -> i + String.length marker
      | None -> fail ()
    in
    try
      Scanf.sscanf
        (String.sub s at (String.length s - at))
        "%d.%d" (fun a b -> (a, b))
    with Scanf.Scan_failure _ | End_of_file -> fail ()
  in
  (version, flavor, gcc)

let required_symbol img name =
  match Elf.find_symbol img name with
  | Some s -> s
  | None -> raise (Bad_vmlinux ("missing symbol " ^ name))

(* strip the per-arch syscall stub prefix *)
let strip_syscall_prefix arch sym =
  let prefixes =
    match arch with
    | Config.X86 -> [ "__x64_sys_" ]
    | Config.Arm64 -> [ "__arm64_sys_" ]
    | Config.Arm32 | Config.Ppc -> [ "sys_" ]
    | Config.Riscv -> [ "__riscv_sys_" ]
  in
  match
    List.find_map
      (fun p ->
        if String.starts_with ~prefix:p sym then
          Some (String.sub sym (String.length p) (String.length sym - String.length p))
        else None)
      prefixes
  with
  | Some n -> n
  | None -> sym

type load_result = { k_kernel : t; k_diags : Ds_util.Diag.t list }

(* A corrupt symbol size or marker pair can imply a table of billions of
   slots; lenient mode refuses to walk more than this many. *)
let max_table_slots = 1 lsl 20

(* Shared strict/lenient loader. Strict raises [Bad_vmlinux] on the
   first problem — including raw [Bad_elf]/[Truncated] escapes from the
   data-section derefs, which used to leak untyped (satellite bugfix).
   Lenient substitutes fallbacks and records what was lost. *)
let load_impl ~strict img =
  let module Diag = Ds_util.Diag in
  let collector = Diag.Collector.create () in
  let diag ?context severity msg =
    if strict then raise (Bad_vmlinux msg)
    else Diag.Collector.emit collector (Diag.v ?context severity ~component:"vmlinux" msg)
  in
  let deref = Elf.Deref.make img in
  let v_version, v_flavor, v_gcc =
    match
      let banner_sym = required_symbol img "linux_banner" in
      parse_banner (Elf.Deref.read_cstring deref banner_sym.Elf.sym_value)
    with
    | parsed -> parsed
    | exception Bad_vmlinux m ->
        diag Diag.Degraded m;
        (Version.v 0 0, Config.Generic, (0, 0))
    | exception Elf.Bad_elf m ->
        if strict then raise (Bad_vmlinux ("linux_banner: " ^ m));
        diag ~context:"linux_banner" Diag.Degraded m;
        (Version.v 0 0, Config.Generic, (0, 0))
    | exception Ds_util.Bytesio.Truncated what ->
        if strict then raise (Bad_vmlinux ("linux_banner: truncated: " ^ what));
        diag ~context:"linux_banner" Diag.Degraded ("truncated: " ^ what);
        (Version.v 0 0, Config.Generic, (0, 0))
  in
  let v_arch =
    match arch_of_machine img.Elf.machine with
    | a -> a
    | exception Bad_vmlinux m ->
        (* nothing kernel-shaped can come out of a BPF object *)
        diag Diag.Fatal m;
        Config.X86
  in
  let v_btf =
    match Elf.find_section img ".BTF" with
    | None ->
        diag Diag.Degraded "missing .BTF section";
        Ds_btf.Btf.create ()
    | Some s ->
        if strict then (
          try Diag.ok (Ds_btf.Btf.decode s.Elf.sec_data)
          with Ds_btf.Btf.Bad_btf m -> raise (Bad_vmlinux (".BTF: " ^ m)))
        else begin
          let bo = Ds_btf.Btf.decode ~mode:`Lenient s.Elf.sec_data in
          (* a dead .BTF is fatal for the BTF component but only degrades
             the image: structs fall back to DWARF *)
          List.iter (fun d -> Diag.Collector.emit collector (Diag.demote d)) (Diag.diags bo);
          Diag.ok bo
        end
  in
  let ptr = Elf.Deref.ptr_size deref in
  (* ftrace events: pointer array between the two markers; each slot
     points at a trace_event_call-like record of four pointers. *)
  let v_tracepoints =
    match
      ( (required_symbol img "__start_ftrace_events").Elf.sym_value,
        (required_symbol img "__stop_ftrace_events").Elf.sym_value )
    with
    | exception Bad_vmlinux m ->
        diag Diag.Degraded m;
        []
    | start, stop ->
        let n_events = Int64.to_int (Int64.sub stop start) / ptr in
        if n_events < 0 then begin
          diag ~context:"ftrace_events" Diag.Degraded "implausible ftrace_events table bounds";
          []
        end
        else begin
          let n_events =
            if (not strict) && n_events > max_table_slots then begin
              diag ~context:"ftrace_events" Diag.Degraded
                (Printf.sprintf "implausibly large ftrace_events table (%d slots); truncated"
                   n_events);
              max_table_slots
            end
            else n_events
          in
          let bad = ref 0 in
          let tps =
            List.filter_map
              (fun i ->
                match
                  let slot = Int64.add start (Int64.of_int (i * ptr)) in
                  let record = Elf.Deref.read_ptr deref slot in
                  let field k =
                    Elf.Deref.read_ptr deref (Int64.add record (Int64.of_int (k * ptr)))
                  in
                  let vtp_event = Elf.Deref.read_cstring deref (field 0) in
                  let vtp_class = Elf.Deref.read_cstring deref (field 1) in
                  let func_addr = field 2 in
                  let vtp_func =
                    match Elf.symbols_at img func_addr with
                    | s :: _ -> Some s.Elf.sym_name
                    | [] -> None
                  in
                  let vtp_fmt = Elf.Deref.read_cstring deref (field 3) in
                  { vtp_event; vtp_class; vtp_func; vtp_fmt }
                with
                | tp -> Some tp
                | exception Elf.Bad_elf m ->
                    if strict then raise (Bad_vmlinux ("ftrace_events: " ^ m));
                    incr bad;
                    None
                | exception Ds_util.Bytesio.Truncated what ->
                    if strict then raise (Bad_vmlinux ("ftrace_events: truncated: " ^ what));
                    incr bad;
                    None)
              (List.init n_events Fun.id)
          in
          if !bad > 0 then
            diag ~context:"ftrace_events" Diag.Degraded
              (Printf.sprintf "%d of %d tracepoint slots unreadable (skipped)" !bad n_events);
          tps
        end
  in
  (* syscall table *)
  let v_syscalls =
    match required_symbol img "sys_call_table" with
    | exception Bad_vmlinux m ->
        diag Diag.Degraded m;
        []
    | table ->
        let n_sys = table.Elf.sym_size / ptr in
        if n_sys < 0 then begin
          diag ~context:"sys_call_table" Diag.Degraded "implausible sys_call_table size";
          []
        end
        else begin
          let n_sys =
            if (not strict) && n_sys > max_table_slots then begin
              diag ~context:"sys_call_table" Diag.Degraded
                (Printf.sprintf "implausibly large sys_call_table (%d slots); truncated" n_sys);
              max_table_slots
            end
            else n_sys
          in
          let bad = ref 0 in
          let scs =
            List.filter_map
              (fun i ->
                let slot = Int64.add table.Elf.sym_value (Int64.of_int (i * ptr)) in
                match
                  let addr = Elf.Deref.read_ptr deref slot in
                  match Elf.symbols_at img addr with
                  | s :: _ -> strip_syscall_prefix v_arch s.Elf.sym_name
                  | [] ->
                      raise (Bad_vmlinux (Printf.sprintf "sys_call_table slot %d unresolvable" i))
                with
                | name -> Some name
                | exception Bad_vmlinux m ->
                    if strict then raise (Bad_vmlinux m);
                    incr bad;
                    None
                | exception Elf.Bad_elf m ->
                    if strict then raise (Bad_vmlinux ("sys_call_table: " ^ m));
                    incr bad;
                    None
                | exception Ds_util.Bytesio.Truncated what ->
                    if strict then raise (Bad_vmlinux ("sys_call_table: truncated: " ^ what));
                    incr bad;
                    None)
              (List.init n_sys Fun.id)
          in
          if !bad > 0 then
            diag ~context:"sys_call_table" Diag.Degraded
              (Printf.sprintf "%d of %d syscall slots unresolvable (skipped)" !bad n_sys);
          scs
        end
  in
  {
    k_kernel = { v_img = img; v_version; v_flavor; v_gcc; v_arch; v_btf; v_tracepoints; v_syscalls };
    k_diags = Diag.Collector.diags collector;
  }

let load img =
  Ds_trace.Trace.span ~name:"vmlinux.load" (fun () -> (load_impl ~strict:true img).k_kernel)

let load_lenient img =
  Ds_trace.Trace.span ~name:"vmlinux.load" (fun () -> load_impl ~strict:false img)

let symbols_named t name =
  List.filter (fun s -> s.Elf.sym_name = name) t.v_img.Elf.symbols

let suffixed_symbols t name =
  let prefix = name ^ "." in
  List.filter (fun s -> String.starts_with ~prefix s.Elf.sym_name) t.v_img.Elf.symbols

let has_tracepoint t name = List.exists (fun tp -> tp.vtp_event = name) t.v_tracepoints
let find_tracepoint t name = List.find_opt (fun tp -> tp.vtp_event = name) t.v_tracepoints
let has_syscall t name = List.mem name t.v_syscalls

let tag t =
  Printf.sprintf "%s/%s/%s"
    (Version.to_string t.v_version)
    (Config.arch_to_string t.v_arch)
    (Config.flavor_to_string t.v_flavor)
