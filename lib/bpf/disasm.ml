let size_str = function Insn.B -> "u8" | Insn.H -> "u16" | Insn.W -> "u32" | Insn.DW -> "u64"

let insn_to_string = function
  | Insn.Mov_imm { dst; imm } -> Printf.sprintf "r%d = %d" dst imm
  | Insn.Mov_reg { dst; src } -> Printf.sprintf "r%d = r%d" dst src
  | Insn.Add_imm { dst; imm } -> Printf.sprintf "r%d += %d" dst imm
  | Insn.Ldx { dst; src; off; size } ->
      Printf.sprintf "r%d = *(%s *)(r%d %s %d)" dst (size_str size) src
        (if off < 0 then "-" else "+")
        (abs off)
  | Insn.Stx { dst; src; off; size } ->
      Printf.sprintf "*(%s *)(r%d %s %d) = r%d" (size_str size) dst
        (if off < 0 then "-" else "+")
        (abs off) src
  | Insn.Jeq_imm { reg; imm; target } -> Printf.sprintf "if r%d == %d goto +%d" reg imm target
  | Insn.Call helper -> (
      match Insn.helper_name helper with
      | Some name -> Printf.sprintf "call %s#%d" name helper
      | None -> Printf.sprintf "call #%d" helper)
  | Insn.Kfunc_call idx -> Printf.sprintf "call kfunc[%d]" idx
  | Insn.Exit -> "exit"

let line i insn = Printf.sprintf "%4d: %s" i (insn_to_string insn)

let reloc_note obj (r : Obj.core_reloc) =
  let kind = match r.Obj.cr_kind with
    | Obj.Field_byte_offset -> "byte_off"
    | Obj.Field_exists -> "field_exists"
  in
  match obj with
  | Some o -> (
      match Obj.access_path o r.Obj.cr_type_id r.Obj.cr_access with
      | Some (root, path) ->
          Printf.sprintf "  ; CO-RE %s %s::%s" kind root (String.concat "." path)
      | None -> Printf.sprintf "  ; CO-RE %s <type %d>" kind r.Obj.cr_type_id)
  | None -> Printf.sprintf "  ; CO-RE %s <type %d>" kind r.Obj.cr_type_id

let prog ?obj (p : Obj.prog) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s: ; SEC(\"%s\")\n" p.Obj.p_name p.Obj.p_section);
  List.iteri
    (fun i insn ->
      Buffer.add_string buf (Printf.sprintf "%-46s" (line i insn));
      (match List.find_opt (fun r -> r.Obj.cr_insn = i) p.Obj.p_relocs with
      | Some r -> Buffer.add_string buf (reloc_note obj r)
      | None -> ());
      Buffer.add_char buf '\n')
    p.Obj.p_insns;
  Buffer.contents buf

let obj (o : Obj.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "object %s (built for %s)\n" o.Obj.o_name o.Obj.o_built_for);
  List.iter
    (fun (d : Maps.def) ->
      Buffer.add_string buf
        (Printf.sprintf "map %s: %s key=%dB value=%dB max=%d\n" d.Maps.md_name
           (match d.Maps.md_type with
           | Maps.Hash -> "hash"
           | Maps.Array -> "array"
           | Maps.Percpu_array n -> Printf.sprintf "percpu_array(%d)" n)
           d.Maps.md_key_size d.Maps.md_value_size d.Maps.md_max_entries))
    o.Obj.o_maps;
  List.iter
    (fun p ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (prog ~obj:o p))
    o.Obj.o_progs;
  Buffer.contents buf
