type t =
  | Kprobe of string
  | Kretprobe of string
  | Fentry of string
  | Fexit of string
  | Tracepoint of { category : string; event : string }
  | Raw_tracepoint of string
  | Lsm of string
  | Syscall_enter of string
  | Syscall_exit of string
  | Perf_event

let to_section = function
  | Kprobe f -> "kprobe/" ^ f
  | Kretprobe f -> "kretprobe/" ^ f
  | Fentry f -> "fentry/" ^ f
  | Fexit f -> "fexit/" ^ f
  | Syscall_enter s -> "tracepoint/syscalls/sys_enter_" ^ s
  | Syscall_exit s -> "tracepoint/syscalls/sys_exit_" ^ s
  | Tracepoint { category; event } -> Printf.sprintf "tracepoint/%s/%s" category event
  | Raw_tracepoint e -> "raw_tp/" ^ e
  | Lsm h -> "lsm/" ^ h
  | Perf_event -> "perf_event"

let strip prefix s =
  if String.starts_with ~prefix s then
    Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let of_section s =
  if s = "perf_event" then Some Perf_event
  else
  let ( <|> ) a b = match a with Some _ -> a | None -> b () in
  Option.map (fun f -> Kprobe f) (strip "kprobe/" s)
  <|> fun () ->
  Option.map (fun f -> Kretprobe f) (strip "kretprobe/" s)
  <|> fun () ->
  Option.map (fun f -> Fentry f) (strip "fentry/" s)
  <|> fun () ->
  Option.map (fun f -> Fexit f) (strip "fexit/" s)
  <|> fun () ->
  Option.map (fun h -> Lsm h) (strip "lsm/" s)
  <|> fun () ->
  Option.map (fun e -> Raw_tracepoint e) (strip "raw_tp/" s)
  <|> fun () ->
  Option.map (fun e -> Raw_tracepoint e) (strip "raw_tracepoint/" s)
  <|> fun () ->
  match strip "tracepoint/" s with
  | None -> None
  | Some rest -> (
      match Ds_util.Strutil.cut ~on:'/' rest with
      | None -> None
      | Some (category, event) ->
          if category = "syscalls" then
            match strip "sys_enter_" event with
            | Some sc -> Some (Syscall_enter sc)
            | None -> (
                match strip "sys_exit_" event with
                | Some sc -> Some (Syscall_exit sc)
                | None -> Some (Tracepoint { category; event }))
          else Some (Tracepoint { category; event }))

let to_string = to_section

let target_function = function
  | Kprobe f | Kretprobe f | Fentry f | Fexit f -> Some f
  | Lsm h -> Some ("security_" ^ h)
  | Tracepoint _ | Raw_tracepoint _ | Syscall_enter _ | Syscall_exit _ | Perf_event -> None

let target_tracepoint = function
  | Tracepoint { event; _ } -> Some event
  | Raw_tracepoint e -> Some e
  | Kprobe _ | Kretprobe _ | Fentry _ | Fexit _ | Lsm _ | Syscall_enter _ | Syscall_exit _
  | Perf_event ->
      None

let target_syscall = function
  | Syscall_enter s | Syscall_exit s -> Some s
  | Kprobe _ | Kretprobe _ | Fentry _ | Fexit _ | Lsm _ | Tracepoint _ | Raw_tracepoint _
  | Perf_event ->
      None
