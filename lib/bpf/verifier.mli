(** A small but genuine eBPF verifier: abstract interpretation of register
    states over the instruction stream.

    Checked properties (a practical subset of the kernel verifier's):
    - R1 enters as the context pointer, R10 as the stack frame pointer;
    - reads go through known-safe pointers: loads are allowed only from
      the context (bounded offset) or the stack; scalars must flow through
      [bpf_probe_read] to be dereferenced;
    - stores only to the stack, within the 512-byte frame;
    - helpers must exist; calls clobber R1–R5 and define R0 (kfunc calls
      are accepted here and name-checked against kernel BTF at load);
    - only forward jumps (no loops), bounded program size; branches fork
      the abstract state and {e both} paths must verify — under a total
      forked-state budget ({!max_states});
    - every path ends with [Exit] and R0 initialized there. *)

type reg_state = Uninit | Scalar | Ctx | Stack

(** The closed set of rules a program can violate — one constructor per
    distinct rejection the checker can produce, so downstream diagnostics
    ({!Ds_verify}) classify structurally instead of parsing message
    strings. *)
type rule =
  | Empty_program
  | Size_cap  (** more than {!max_insns} instructions *)
  | No_exit  (** fell off the end of the stream *)
  | Invalid_register  (** register outside r0–r10 *)
  | Uninit_register  (** read of a never-written register *)
  | Write_r10  (** write to the read-only frame pointer *)
  | Ctx_oob  (** ctx load beyond {!ctx_limit} *)
  | Stack_oob_read  (** stack load outside [[-512, 0)] *)
  | Stack_oob_write  (** stack store outside [[-512, 0)] *)
  | Scalar_deref  (** load through a scalar (unchecked pointer) *)
  | Ctx_write  (** store into the read-only context *)
  | Bad_store_target  (** store through a scalar/uninit register *)
  | Unknown_helper  (** call to a helper id not in the registry *)
  | Backward_jump  (** back-edge: loops are not allowed *)
  | Jump_oob  (** forward jump past the end of the program *)
  | Uninit_r0_exit  (** exit with R0 never written *)
  | Path_explosion  (** forked-state budget {!max_states} exhausted *)

type error = {
  ve_insn : int;  (** offending instruction index, -1 for whole-program *)
  ve_msg : string;
}

(** A structured rejection: everything {!error} carries, plus the
    violated {!rule}, the abstract register file at the failure point
    (indices 0–10; [None] for whole-program rejections that never
    started executing), and the forked-path trail — the [(branch pc,
    taken?)] decisions, oldest first, of the exploration path that
    reached the failure. *)
type rejection = {
  rj_rule : rule;
  rj_insn : int;  (** same convention as [ve_insn] *)
  rj_msg : string;  (** byte-identical to the historical [ve_msg] *)
  rj_regs : reg_state array option;
  rj_trail : (int * bool) list;
}

val max_insns : int

val ctx_limit : int
(** Maximum context offset a load may use. *)

val max_states : int
(** Total forked (pc, register-file) states one verification may
    explore; exceeding it rejects with {!Path_explosion}. *)

val verify_full : Insn.t list -> (unit, rejection) result
(** The structured entrypoint. Never raises. *)

val verify : Insn.t list -> (unit, error) result
(** {!verify_full} with the rejection flattened to the historical
    [{ve_insn; ve_msg}] pair (messages unchanged). *)
