open Ds_util
open Ds_ksrc
module Depset = Depsurf.Depset
module Delta = Depsurf.Delta
module Dataset = Depsurf.Dataset
module Surface = Depsurf.Surface
module Diff = Depsurf.Diff
module Codec = Depsurf.Codec
module Store = Ds_store.Store
module Graph = Ds_graph.Graph
module Blast = Ds_graph.Blast
module Prim = Codec.Prim
module W = Bytesio.Writer
module R = Bytesio.Reader

let state_version = 1
let ns = "watch"

(* ---- image naming (shared with the serve tier, which re-exports it) - *)

let image_name ((v : Version.t), (cfg : Config.t)) =
  Printf.sprintf "%d.%d-%s-%s" v.Version.major v.Version.minor
    (Config.arch_to_string cfg.Config.arch)
    (Config.flavor_to_string cfg.Config.flavor)

let image_of_name name =
  match String.split_on_char '-' name with
  | [ vs; arch; flavor ] -> (
      match String.split_on_char '.' vs with
      | [ ma; mi ] -> (
          match (int_of_string_opt ma, int_of_string_opt mi) with
          | Some major, Some minor ->
              let v = Version.v major minor in
              let cfg =
                match
                  ( List.find_opt (fun a -> Config.arch_to_string a = arch) Config.arches,
                    List.find_opt (fun f -> Config.flavor_to_string f = flavor) Config.flavors )
                with
                | Some a, Some f -> Some Config.{ arch = a; flavor = f }
                | _ -> None
              in
              Option.bind cfg (fun cfg ->
                  if List.exists (fun img -> img = (v, cfg)) Dataset.study_images then
                    Some (v, cfg)
                  else None)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ---- types ---------------------------------------------------------- *)

type sub = { sb_id : string; sb_label : string; sb_deps : Depset.dep list }

type event = {
  ev_seq : int;
  ev_sub : string;
  ev_release : string;
  ev_base : string;
  ev_hits : Depset.dep list;
  ev_reasons : string list;
  ev_time : float;
}

type ingest_result = {
  ig_release : string;
  ig_base : string;
  ig_warm : bool;
  ig_ops : Delta.counts;
  ig_health : string;
  ig_events : event list;
}

type t = {
  w_ds : Dataset.t;
  w_pool : Par.pool option;
  w_mu : Mutex.t;
  mutable w_subs : sub list;  (** registration order *)
  mutable w_events : event list;  (** newest first *)
  mutable w_next_seq : int;
  mutable w_listeners : (unit -> unit) list;
  w_extractions : int Atomic.t;
  w_base_refs : (string, string) Hashtbl.t;  (** base image name -> surface digest *)
  w_metrics : Metrics.t option;
}

let m_incr ?by t name = Option.iter (fun m -> Metrics.incr ?by m name) t.w_metrics

(* ---- persistence ---------------------------------------------------- *)

let w_f64 w f = W.u64 w (Int64.bits_of_float f)
let r_f64 r = Int64.float_of_bits (R.u64 r)

let w_sub w s =
  Prim.w_str w s.sb_id;
  Prim.w_str w s.sb_label;
  Prim.w_list w Prim.w_dep s.sb_deps

let r_sub r =
  let sb_id = Prim.r_str r in
  let sb_label = Prim.r_str r in
  let sb_deps = Prim.r_list r Prim.r_dep in
  { sb_id; sb_label; sb_deps }

let w_event w e =
  W.uleb128 w e.ev_seq;
  Prim.w_str w e.ev_sub;
  Prim.w_str w e.ev_release;
  Prim.w_str w e.ev_base;
  Prim.w_list w Prim.w_dep e.ev_hits;
  Prim.w_list w Prim.w_str e.ev_reasons;
  w_f64 w e.ev_time

let r_event r =
  let ev_seq = R.uleb128 r in
  let ev_sub = Prim.r_str r in
  let ev_release = Prim.r_str r in
  let ev_base = Prim.r_str r in
  let ev_hits = Prim.r_list r Prim.r_dep in
  let ev_reasons = Prim.r_list r Prim.r_str in
  let ev_time = r_f64 r in
  { ev_seq; ev_sub; ev_release; ev_base; ev_hits; ev_reasons; ev_time }

let encode_state t =
  let w = W.create () in
  W.uleb128 w state_version;
  W.uleb128 w t.w_next_seq;
  Prim.w_list w w_sub t.w_subs;
  Prim.w_list w w_event t.w_events;
  W.contents w

let state_key ds = Dataset.cache_key ds ~label:"watch-state" [ string_of_int state_version ]

(* rewrite-in-place on every mutation: the registry is small (the event
   log is pruned with its subscription) and the store's atomic rename
   makes the update crash-safe *)
let persist t =
  match Dataset.store t.w_ds with
  | None -> ()
  | Some store -> Store.add store ~ns ~key:(state_key t.w_ds) (encode_state t)

let load t =
  match Dataset.store t.w_ds with
  | None -> ()
  | Some store -> (
      match
        Store.find store ~ns ~key:(state_key t.w_ds) ~decode:(fun data ->
            let r = R.of_string data in
            let v = R.uleb128 r in
            if v <> state_version then Prim.fail "watch state version %d" v;
            let next_seq = R.uleb128 r in
            let subs = Prim.r_list r r_sub in
            let events = Prim.r_list r r_event in
            Prim.expect_eof r;
            (next_seq, subs, events))
      with
      | Some (next_seq, subs, events) ->
          t.w_next_seq <- next_seq;
          t.w_subs <- subs;
          t.w_events <- events
      | None -> ())

let create ?pool ?metrics ds =
  let t =
    {
      w_ds = ds;
      w_pool = pool;
      w_metrics = metrics;
      w_mu = Mutex.create ();
      w_subs = [];
      w_events = [];
      w_next_seq = 1;
      w_listeners = [];
      w_extractions = Atomic.make 0;
      w_base_refs = Hashtbl.create 8;
    }
  in
  load t;
  t

let locked t f =
  Mutex.lock t.w_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.w_mu) f

(* ---- registry ------------------------------------------------------- *)

let canonical deps = List.sort_uniq Depset.compare_dep deps

let sub_id deps =
  let h = Store.Hash.create () in
  List.iter (fun d -> Store.Hash.string h (Depset.dep_to_string d)) deps;
  Store.Hash.hex h

let subscribe t ?label deps =
  let deps = canonical deps in
  let id = sub_id deps in
  locked t @@ fun () ->
  match List.find_opt (fun s -> s.sb_id = id) t.w_subs with
  | Some existing -> (
      match label with
      | None | Some "" -> existing
      | Some l when l = existing.sb_label -> existing
      | Some l ->
          let updated = { existing with sb_label = l } in
          t.w_subs <- List.map (fun s -> if s.sb_id = id then updated else s) t.w_subs;
          persist t;
          updated)
  | None ->
      let s = { sb_id = id; sb_label = Option.value ~default:"" label; sb_deps = deps } in
      t.w_subs <- t.w_subs @ [ s ];
      m_incr t "watch.sub_create";
      persist t;
      s

let unsubscribe t id =
  locked t @@ fun () ->
  if List.exists (fun s -> s.sb_id = id) t.w_subs then begin
    t.w_subs <- List.filter (fun s -> s.sb_id <> id) t.w_subs;
    t.w_events <- List.filter (fun e -> e.ev_sub <> id) t.w_events;
    m_incr t "watch.sub_delete";
    persist t;
    true
  end
  else false

let find_sub t id = locked t @@ fun () -> List.find_opt (fun s -> s.sb_id = id) t.w_subs
let subs t = locked t @@ fun () -> t.w_subs
let cursor t = locked t @@ fun () -> t.w_next_seq - 1

let events_after t ~sub ~since =
  locked t @@ fun () ->
  List.rev
    (List.filter (fun e -> e.ev_sub = sub && e.ev_seq > since) t.w_events)

let on_change t f = locked t (fun () -> t.w_listeners <- f :: t.w_listeners)
let extractions t = Atomic.get t.w_extractions

(* ---- ingest --------------------------------------------------------- *)

let health_of diags =
  match Diag.worst diags with
  | None | Some Diag.Warning -> "clean"
  | Some Diag.Degraded -> "degraded"
  | Some Diag.Fatal -> "fatal"

let base_ref t base_name surface =
  match Hashtbl.find_opt t.w_base_refs base_name with
  | Some d -> d
  | None ->
      let d = Delta.digest surface in
      Hashtbl.replace t.w_base_refs base_name d;
      d

let payload_digest payload =
  let h = Store.Hash.create () in
  (match payload with
  | `Image bytes ->
      Store.Hash.string h "image";
      Store.Hash.string h bytes
  | `Surface bytes ->
      Store.Hash.string h "surface";
      Store.Hash.string h bytes);
  Store.Hash.hex h

let next_surface t payload =
  match payload with
  | `Surface bytes -> (
      match Codec.decode_surface bytes with
      | s -> Ok s
      | exception _ -> Error "undecodable surface payload")
  | `Image bytes -> (
      Atomic.incr t.w_extractions;
      m_incr t "watch.extract";
      (* lenient extraction never raises: losses land in the surface's
         own health, which the delta carries *)
      match Surface.extract ~mode:`Lenient bytes with
      | o -> Ok (Diag.ok o)
      | exception _ -> Error "image extraction failed")

(* the delta for (base, payload) — warm when the store already holds it,
   in which case no surface is extracted at all *)
let delta_bytes t ~base_name ~base_surface ~name payload =
  let key =
    Dataset.cache_key t.w_ds ~label:"delta"
      [ base_name; name; payload_digest payload; string_of_int Delta.codec_version ]
  in
  let store = Dataset.store t.w_ds in
  let cached =
    Option.bind store (fun s ->
        Store.find s ~ns:Delta.ns ~key ~decode:(fun bytes ->
            ignore (Delta.decode bytes);
            bytes))
  in
  match cached with
  | Some bytes -> Ok (bytes, true)
  | None -> (
      match next_surface t payload with
      | Error _ as e -> e
      | Ok next ->
          let d = Delta.diff_surfaces ~base:base_surface next in
          let bytes = Delta.encode d in
          Option.iter (fun s -> Store.add s ~ns:Delta.ns ~key bytes) store;
          Ok (bytes, false))

let ingest t ~base ~name payload =
  Ds_trace.Trace.span ~name:"watch.ingest"
    ~attrs:[ ("base", image_name base); ("release", name) ]
  @@ fun () ->
  if not (List.exists (fun img -> img = base) Dataset.study_images) then
    Error (Printf.sprintf "unknown base image %s" (image_name base))
  else begin
    m_incr t "watch.ingest";
    let v, cfg = base in
    let base_name = image_name base in
    let base_surface = Dataset.surface t.w_ds v cfg in
    match delta_bytes t ~base_name ~base_surface ~name payload with
    | Error _ as e -> e
    | Ok (bytes, warm) -> (
        match Delta.decode bytes with
        | exception _ -> Error "corrupt delta entry"
        | d ->
            if d.Delta.dl_base_ref <> base_ref t base_name base_surface then
              Error "delta does not reference the requested base"
            else begin
              let changed = Delta.changed_deps d in
              let diff = Delta.to_diff ~base:base_surface d in
              let subs_now = locked t (fun () -> t.w_subs) in
              let matched =
                if changed = [] || subs_now = [] then []
                else begin
                  let g = Graph.of_dataset ?pool:t.w_pool t.w_ds v cfg in
                  let tbl = Blast.hit_set g ~changed in
                  (* a directly-changed construct always hits, even when
                     it is not a node of the dependency graph *)
                  List.iter (fun dep -> Hashtbl.replace tbl dep ()) changed;
                  List.filter_map
                    (fun s ->
                      match List.filter (Hashtbl.mem tbl) s.sb_deps with
                      | [] -> None
                      | hits -> Some (s, hits))
                    subs_now
                end
              in
              let now = Unix.gettimeofday () in
              let direct = Hashtbl.create 64 in
              List.iter (fun dep -> Hashtbl.replace direct dep ()) changed;
              let reason_of dep =
                if Hashtbl.mem direct dep then
                  let removed, reasons = Blast.fate diff dep in
                  if removed then Depset.dep_to_string dep ^ ": removed"
                  else if reasons <> [] then
                    Depset.dep_to_string dep ^ ": " ^ String.concat "; " reasons
                  else Depset.dep_to_string dep ^ ": changed"
                else Depset.dep_to_string dep ^ ": transitively affected"
              in
              let events =
                locked t (fun () ->
                    let evs =
                      List.map
                        (fun (s, hits) ->
                          let seq = t.w_next_seq in
                          t.w_next_seq <- t.w_next_seq + 1;
                          {
                            ev_seq = seq;
                            ev_sub = s.sb_id;
                            ev_release = name;
                            ev_base = base_name;
                            ev_hits = hits;
                            ev_reasons = List.map reason_of hits;
                            ev_time = now;
                          })
                        matched
                    in
                    t.w_events <- List.rev_append evs t.w_events;
                    if evs <> [] then persist t;
                    evs)
              in
              m_incr ~by:(List.length events) t "watch.events";
              let listeners = locked t (fun () -> t.w_listeners) in
              if events <> [] then List.iter (fun f -> f ()) listeners;
              Ok
                {
                  ig_release = name;
                  ig_base = base_name;
                  ig_warm = warm;
                  ig_ops = Delta.counts d;
                  ig_health = health_of d.Delta.dl_health;
                  ig_events = events;
                }
            end)
  end

(* ---- JSON views ----------------------------------------------------- *)

let sub_json t s =
  Json.Obj
    [
      ("id", Json.String s.sb_id);
      ("label", Json.String s.sb_label);
      ("deps", Depsurf.Export.dep_list s.sb_deps);
      ("cursor", Json.Int (cursor t));
    ]

let event_json e =
  Json.Obj
    [
      ("seq", Json.Int e.ev_seq);
      ("subscription", Json.String e.ev_sub);
      ("release", Json.String e.ev_release);
      ("base", Json.String e.ev_base);
      ("hits", Depsurf.Export.dep_list e.ev_hits);
      ("reasons", Json.List (List.map (fun s -> Json.String s) e.ev_reasons));
      ("time", Json.Float e.ev_time);
    ]

let ingest_json r =
  let c = r.ig_ops in
  Json.Obj
    [
      ("release", Json.String r.ig_release);
      ("base", Json.String r.ig_base);
      ("warm", Json.Bool r.ig_warm);
      ( "ops",
        Json.Obj
          [
            ("adds", Json.Int c.Delta.dc_adds);
            ("removes", Json.Int c.Delta.dc_removes);
            ("changes", Json.Int c.Delta.dc_changes);
          ] );
      ("health", Json.String r.ig_health);
      ("matched", Json.Int (List.length r.ig_events));
      ("events", Json.List (List.map event_json r.ig_events));
    ]
