(** Standing release monitoring (the paper's drift problem made
    continuous): a subscription registry over {!Depsurf.Depset.dep}
    sets, plus incremental ingest of newly evolved releases through the
    store's "delta" tier ({!Depsurf.Delta}).

    On ingest of release [name] against a study-matrix base image, the
    release delta's removed/changed constructs are intersected with
    every registered depset — reusing {!Ds_graph.Blast} reverse
    closures for transitive hits — and a mismatch event is recorded per
    affected subscription, with a global monotone cursor for long-poll
    replay. State (subscriptions + events) persists through the
    dataset's store under the ["watch"] namespace; deltas under
    {!Depsurf.Delta.ns}. All operations are domain-safe. *)

open Ds_ksrc

type sub = {
  sb_id : string;
      (** content-addressed: digest of the canonical (sorted,
          deduplicated) depset, so re-registering the same set is
          idempotent and returns the same id *)
  sb_label : string;
  sb_deps : Depsurf.Depset.dep list;  (** sorted, deduplicated *)
}

type event = {
  ev_seq : int;  (** global monotone cursor, 1-based *)
  ev_sub : string;
  ev_release : string;  (** the ingested release's label *)
  ev_base : string;  (** base image name the delta was taken against *)
  ev_hits : Depsurf.Depset.dep list;
      (** the subscription's own deps transitively affected, sorted *)
  ev_reasons : string list;  (** one per hit, in [ev_hits] order *)
  ev_time : float;
}

type ingest_result = {
  ig_release : string;
  ig_base : string;
  ig_warm : bool;  (** delta served from the store: no surface extraction *)
  ig_ops : Depsurf.Delta.counts;
  ig_health : string;  (** clean/degraded/fatal of the ingested surface *)
  ig_events : event list;  (** newly recorded, one per matched subscription *)
}

type t

val create : ?pool:Ds_util.Par.pool -> ?metrics:Ds_util.Metrics.t -> Depsurf.Dataset.t -> t
(** Loads persisted subscriptions and events from the dataset's store
    (empty registry when the dataset has none). [metrics] receives the
    [watch.*] counters (subscription churn, ingests, extractions,
    events) — the serve tier passes its own registry. *)

val image_name : Version.t * Config.t -> string
(** ["<major>.<minor>-<arch>-<flavor>"], e.g. ["5.4-x86-generic"] —
    the study matrix naming shared with the serve tier. *)

val image_of_name : string -> (Version.t * Config.t) option
(** Inverse of {!image_name}; [None] when not in the study matrix. *)

val subscribe : t -> ?label:string -> Depsurf.Depset.dep list -> sub
val unsubscribe : t -> string -> bool
(** Also prunes the subscription's events. *)

val find_sub : t -> string -> sub option
val subs : t -> sub list

val cursor : t -> int
(** Sequence number of the last recorded event; 0 when none. *)

val events_after : t -> sub:string -> since:int -> event list
(** The subscription's events with [ev_seq > since], oldest first.
    Replay is deterministic: the same cursor always returns the same
    events (until {!unsubscribe} prunes them). *)

val on_change : t -> (unit -> unit) -> unit
(** Register a listener called (outside the registry lock) after every
    batch of new events — the serve tier's long-poll wakeup. *)

val extractions : t -> int
(** Full surface extractions this handle performed across all ingests —
    the bench gates this stays 0 on warm delta-ingest. *)

val ingest :
  t ->
  base:Version.t * Config.t ->
  name:string ->
  [ `Image of string | `Surface of string ] ->
  (ingest_result, string) result
(** Ingest release [name] against a base from the study matrix.
    [`Image bytes] is a raw vmlinux image (lenient extraction — health
    lands in the delta); [`Surface bytes] is a {!Depsurf.Codec}-encoded
    surface (dataset-only deployments; no extraction at all). The delta
    is keyed by payload digest in the store, so re-ingesting the same
    bytes is warm: decode-only, O(changed) ops, 0 extractions.
    [Error] on an unknown base image or an undecodable payload. *)

val sub_json : t -> sub -> Ds_util.Json.t
val event_json : event -> Ds_util.Json.t
val ingest_json : ingest_result -> Ds_util.Json.t
