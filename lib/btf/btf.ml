open Ds_util
open Ds_ctypes

type member = { m_name : string; m_type : int; m_offset_bits : int }
type bparam = { p_name : string; p_type : int }

type kind =
  | Void
  | Int of { name : string; bits : int; signed : bool }
  | Ptr of int
  | Array of { elem : int; index : int; nelems : int }
  | Struct of { name : string; size : int; members : member list }
  | Union of { name : string; size : int; members : member list }
  | Enum of { name : string; size : int; values : (string * int) list }
  | Fwd of { name : string; union : bool }
  | Typedef of { name : string; typ : int }
  | Volatile of int
  | Const of int
  | Restrict of int
  | Func of { name : string; proto : int }
  | Func_proto of { ret : int; params : bparam list }
  | Float of { name : string; bits : int }

type t = { mutable records : kind array; mutable len : int }

exception Bad_btf of string

let create () = { records = Array.make 64 Void; len = 0 }

let add t k =
  if t.len = Array.length t.records then begin
    let bigger = Array.make (2 * t.len) Void in
    Array.blit t.records 0 bigger 0 t.len;
    t.records <- bigger
  end;
  t.records.(t.len) <- k;
  t.len <- t.len + 1;
  t.len

let get t id =
  if id = 0 then Void
  else if id < 0 || id > t.len then raise (Bad_btf (Printf.sprintf "bad type id %d" id))
  else t.records.(id - 1)

let length t = t.len

let iteri t f =
  for i = 1 to t.len do
    f i t.records.(i - 1)
  done

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)
(* ------------------------------------------------------------------ *)

let magic = 0xEB9F
let hdr_len = 24

let kind_code = function
  | Void -> assert false
  | Int _ -> 1
  | Ptr _ -> 2
  | Array _ -> 3
  | Struct _ -> 4
  | Union _ -> 5
  | Enum _ -> 6
  | Fwd _ -> 7
  | Typedef _ -> 8
  | Volatile _ -> 9
  | Const _ -> 10
  | Restrict _ -> 11
  | Func _ -> 12
  | Func_proto _ -> 13
  | Float _ -> 16

module Strtab = struct
  type t = { buf : Buffer.t; tbl : (string, int) Hashtbl.t }

  let create () =
    let buf = Buffer.create 256 in
    Buffer.add_char buf '\000';
    let tbl = Hashtbl.create 64 in
    Hashtbl.add tbl "" 0;
    { buf; tbl }

  let add t s =
    match Hashtbl.find_opt t.tbl s with
    | Some off -> off
    | None ->
        let off = Buffer.length t.buf in
        Buffer.add_string t.buf s;
        Buffer.add_char t.buf '\000';
        Hashtbl.add t.tbl s off;
        off

  let contents t = Buffer.contents t.buf
end

let encode t =
  let strtab = Strtab.create () in
  let body = Bytesio.Writer.create () in
  let header name_off info size_or_type =
    Bytesio.Writer.u32 body name_off;
    Bytesio.Writer.u32 body info;
    Bytesio.Writer.u32 body size_or_type
  in
  let info ?(kind_flag = false) kind vlen =
    (if kind_flag then 1 lsl 31 else 0) lor (kind lsl 24) lor (vlen land 0xFFFF)
  in
  iteri t (fun _ k ->
      let code = kind_code k in
      match k with
      | Void -> assert false
      | Int { name; bits; signed } ->
          header (Strtab.add strtab name) (info code 0) ((bits + 7) / 8);
          (* encoding byte: bit 0 signed; nr_bits in low byte *)
          Bytesio.Writer.u32 body (((if signed then 1 else 0) lsl 24) lor bits)
      | Ptr ty | Volatile ty | Const ty | Restrict ty -> header 0 (info code 0) ty
      | Typedef { name; typ } -> header (Strtab.add strtab name) (info code 0) typ
      | Array { elem; index; nelems } ->
          header 0 (info code 0) 0;
          Bytesio.Writer.u32 body elem;
          Bytesio.Writer.u32 body index;
          Bytesio.Writer.u32 body nelems
      | Struct { name; size; members } | Union { name; size; members } ->
          header (Strtab.add strtab name) (info code (List.length members)) size;
          List.iter
            (fun m ->
              Bytesio.Writer.u32 body (Strtab.add strtab m.m_name);
              Bytesio.Writer.u32 body m.m_type;
              Bytesio.Writer.u32 body m.m_offset_bits)
            members
      | Enum { name; size; values } ->
          header (Strtab.add strtab name) (info code (List.length values)) size;
          List.iter
            (fun (n, v) ->
              Bytesio.Writer.u32 body (Strtab.add strtab n);
              Bytesio.Writer.u32 body v)
            values
      | Fwd { name; union } ->
          header (Strtab.add strtab name) (info ~kind_flag:union code 0) 0
      | Func { name; proto } -> header (Strtab.add strtab name) (info code 0) proto
      | Func_proto { ret; params } ->
          header 0 (info code (List.length params)) ret;
          List.iter
            (fun p ->
              Bytesio.Writer.u32 body (Strtab.add strtab p.p_name);
              Bytesio.Writer.u32 body p.p_type)
            params
      | Float { name; bits } -> header (Strtab.add strtab name) (info code 0) (bits / 8));
  let types = Bytesio.Writer.contents body in
  let strings = Strtab.contents strtab in
  let out = Bytesio.Writer.create () in
  Bytesio.Writer.u16 out magic;
  Bytesio.Writer.u8 out 1 (* version *);
  Bytesio.Writer.u8 out 0 (* flags *);
  Bytesio.Writer.u32 out hdr_len;
  Bytesio.Writer.u32 out 0 (* type_off *);
  Bytesio.Writer.u32 out (String.length types);
  Bytesio.Writer.u32 out (String.length types) (* str_off: right after types *);
  Bytesio.Writer.u32 out (String.length strings);
  Bytesio.Writer.bytes out types;
  Bytesio.Writer.bytes out strings;
  Bytesio.Writer.contents out

type decode_result = { b_btf : t; b_diags : Diag.t list }

(* Shared strict/lenient decoder. Strict raises [Bad_btf] on the first
   problem (historical messages preserved); lenient keeps every record
   decoded before the failure point and describes the loss. [Stop]
   aborts lenient parsing after a diagnostic has been recorded. *)
exception Stop

let decode_impl ~strict data =
  let collector = Diag.Collector.create () in
  let diag ?context ?offset severity msg =
    if strict then raise (Bad_btf msg)
    else Diag.Collector.emit collector (Diag.v ?context ?offset severity ~component:"btf" msg)
  in
  let fatal ?offset msg =
    diag ?offset Diag.Fatal msg;
    raise Stop
  in
  let t = create () in
  (try
     let r = Bytesio.Reader.of_string data in
     let m = try Bytesio.Reader.u16 r with Bytesio.Truncated _ -> fatal ~offset:0 "truncated header" in
     if m <> magic then fatal ~offset:0 "bad magic";
     let hlen, type_off, type_len, str_off, str_len =
       try
         let _version = Bytesio.Reader.u8 r in
         let _flags = Bytesio.Reader.u8 r in
         let hlen = Bytesio.Reader.u32 r in
         let type_off = Bytesio.Reader.u32 r in
         let type_len = Bytesio.Reader.u32 r in
         let str_off = Bytesio.Reader.u32 r in
         let str_len = Bytesio.Reader.u32 r in
         (hlen, type_off, type_len, str_off, str_len)
       with Bytesio.Truncated _ -> fatal ~offset:2 "truncated header"
     in
     let types =
       try Bytesio.Reader.sub r ~pos:(hlen + type_off) ~len:type_len
       with Bytesio.Truncated _ | Invalid_argument _ -> fatal ~offset:hdr_len "bad type section bounds"
     in
     let strings =
       try Bytesio.Reader.sub r ~pos:(hlen + str_off) ~len:str_len
       with Bytesio.Truncated _ | Invalid_argument _ -> fatal ~offset:hdr_len "bad string section bounds"
     in
     let record_start = ref 0 in
     let fail msg =
       if strict then raise (Bad_btf msg)
       else begin
         (* keep the records decoded so far, drop the tail *)
         diag ~offset:!record_start Diag.Degraded
           (Printf.sprintf "%s; kept %d type records" msg t.len);
         raise Stop
       end
     in
     let str off =
       try Bytesio.Reader.cstring_at strings off
       with Bytesio.Truncated _ -> fail "bad string offset"
     in
     while not (Bytesio.Reader.eof types) do
       record_start := Bytesio.Reader.pos types;
       let name_off = Bytesio.Reader.u32 types in
       let info = Bytesio.Reader.u32 types in
       let size_or_type = Bytesio.Reader.u32 types in
       let kind = (info lsr 24) land 0x1F in
       let vlen = info land 0xFFFF in
       let kind_flag = info land 0x80000000 <> 0 in
       let name = str name_off in
       let record =
         match kind with
         | 1 ->
             let enc = Bytesio.Reader.u32 types in
             Int { name; bits = enc land 0xFF; signed = (enc lsr 24) land 1 = 1 }
         | 2 -> Ptr size_or_type
         | 3 ->
             let elem = Bytesio.Reader.u32 types in
             let index = Bytesio.Reader.u32 types in
             let nelems = Bytesio.Reader.u32 types in
             Array { elem; index; nelems }
         | 4 | 5 ->
             let members =
               List.init vlen (fun _ ->
                   let m_name = str (Bytesio.Reader.u32 types) in
                   let m_type = Bytesio.Reader.u32 types in
                   let m_offset_bits = Bytesio.Reader.u32 types in
                   { m_name; m_type; m_offset_bits })
             in
             if kind = 4 then Struct { name; size = size_or_type; members }
             else Union { name; size = size_or_type; members }
         | 6 ->
             let values =
               List.init vlen (fun _ ->
                   let n = str (Bytesio.Reader.u32 types) in
                   let v = Bytesio.Reader.u32 types in
                   (n, v))
             in
             Enum { name; size = size_or_type; values }
         | 7 -> Fwd { name; union = kind_flag }
         | 8 -> Typedef { name; typ = size_or_type }
         | 9 -> Volatile size_or_type
         | 10 -> Const size_or_type
         | 11 -> Restrict size_or_type
         | 12 -> Func { name; proto = size_or_type }
         | 13 ->
             let params =
               List.init vlen (fun _ ->
                   let p_name = str (Bytesio.Reader.u32 types) in
                   let p_type = Bytesio.Reader.u32 types in
                   { p_name; p_type })
             in
             Func_proto { ret = size_or_type; params }
         | 16 -> Float { name; bits = size_or_type * 8 }
         | k -> fail (Printf.sprintf "unsupported kind %d" k)
       in
       ignore (add t record)
     done
   with
  | Bytesio.Truncated _ ->
      if strict then raise (Bad_btf "truncated type section")
      else
        Diag.Collector.emit collector
          (Diag.v ~offset:(String.length data) Diag.Degraded ~component:"btf"
             (Printf.sprintf "truncated type section; kept %d type records" t.len))
  | Stop -> ());
  { b_btf = t; b_diags = Diag.Collector.diags collector }

let decode ?(mode = `Strict) data =
  Ds_trace.Trace.span ~name:"btf.decode"
    ~attrs:[ ("bytes", string_of_int (String.length data)) ]
    (fun () ->
      match mode with
      | `Strict -> Diag.outcome (decode_impl ~strict:true data).b_btf
      | `Lenient ->
          let r = decode_impl ~strict:false data in
          Diag.outcome ~diags:r.b_diags r.b_btf)

let decode_lenient data =
  let o = decode ~mode:`Lenient data in
  { b_btf = o.Diag.ok; b_diags = o.Diag.diags }

(* ------------------------------------------------------------------ *)
(* Bridge to the C type model                                          *)
(* ------------------------------------------------------------------ *)

let of_env env funcs =
  let t = create () in
  let cache : (Ctype.t, int) Hashtbl.t = Hashtbl.create 64 in
  let named : (string, int) Hashtbl.t = Hashtbl.create 64 in
  (* Two passes over named aggregates break reference cycles: first
     allocate placeholder ids, then fill members. We emulate by emitting
     structs on demand with a visiting set falling back to Fwd. *)
  let visiting : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec id_of (ty : Ctype.t) =
    match Hashtbl.find_opt cache ty with
    | Some id -> id
    | None ->
        let id =
          match ty with
          | Ctype.Void -> 0
          | Ctype.Int { name; bits; signed } -> add t (Int { name; bits; signed })
          | Ctype.Float { name; bits } -> add t (Float { name; bits })
          | Ctype.Ptr inner -> add_ref (fun i -> Ptr i) inner
          | Ctype.Const inner -> add_ref (fun i -> Const i) inner
          | Ctype.Volatile inner -> add_ref (fun i -> Volatile i) inner
          | Ctype.Array (inner, n) ->
              let elem = id_of inner in
              let index = id_of Ctype.uint in
              add t (Array { elem; index; nelems = n })
          | Ctype.Struct_ref name -> struct_id name `Struct
          | Ctype.Union_ref name -> struct_id name `Union
          | Ctype.Enum_ref name -> enum_id name
          | Ctype.Typedef_ref name -> typedef_id name
          | Ctype.Func_proto proto -> proto_id proto
        in
        Hashtbl.replace cache ty id;
        id
  and add_ref mk inner =
    let i = id_of inner in
    add t (mk i)
  and struct_id name kind =
    let key = "s:" ^ name in
    match Hashtbl.find_opt named key with
    | Some id -> id
    | None -> (
        if Hashtbl.mem visiting name then
          (* cycle: emit a forward declaration *)
          let id = add t (Fwd { name; union = kind = `Union }) in
          id
        else
          match Decl.find_struct env name with
          | None ->
              let id = add t (Fwd { name; union = kind = `Union }) in
              Hashtbl.replace named key id;
              id
          | Some def ->
              Hashtbl.replace visiting name ();
              let members =
                List.map
                  (fun (f : Decl.field) ->
                    { m_name = f.fname; m_type = id_of f.ftype; m_offset_bits = f.bits_offset })
                  def.fields
              in
              Hashtbl.remove visiting name;
              let record =
                match def.skind with
                | `Struct -> Struct { name; size = def.byte_size; members }
                | `Union -> Union { name; size = def.byte_size; members }
              in
              let id = add t record in
              Hashtbl.replace named key id;
              id)
  and enum_id name =
    let key = "e:" ^ name in
    match Hashtbl.find_opt named key with
    | Some id -> id
    | None ->
        let values =
          match Decl.find_enum env name with Some e -> e.values | None -> []
        in
        let id = add t (Enum { name; size = 4; values }) in
        Hashtbl.replace named key id;
        id
  and typedef_id name =
    let key = "t:" ^ name in
    match Hashtbl.find_opt named key with
    | Some id -> id
    | None -> (
        match Decl.find_typedef env name with
        | None -> raise (Bad_btf ("dangling typedef " ^ name))
        | Some td ->
            let typ = id_of td.aliased in
            let id = add t (Typedef { name; typ }) in
            Hashtbl.replace named key id;
            id)
  and proto_id (proto : Ctype.proto) =
    let params =
      List.map
        (fun (p : Ctype.param) -> { p_name = p.pname; p_type = id_of p.ptype })
        proto.params
    in
    let params =
      if proto.variadic then params @ [ { p_name = ""; p_type = 0 } ] else params
    in
    add t (Func_proto { ret = id_of proto.ret; params })
  in
  (* Emit every named definition so the table is complete even if nothing
     references it. *)
  List.iter (fun (s : Decl.struct_def) ->
      ignore (struct_id s.sname s.skind)) (Decl.structs env);
  List.iter (fun (e : Decl.enum_def) -> ignore (enum_id e.ename)) (Decl.enums env);
  List.iter (fun (td : Decl.typedef_def) -> ignore (typedef_id td.tname)) (Decl.typedefs env);
  List.iter
    (fun (f : Decl.func_decl) ->
      let proto = proto_id f.proto in
      ignore (add t (Func { name = f.fname; proto })))
    funcs;
  t

(* A corrupt table can contain reference cycles through Ptr/Typedef ids
   (impossible in well-formed BTF, which only cycles through named
   aggregates); the depth bound turns them into a typed error instead of
   a stack overflow. *)
let max_type_depth = 64

let rec ctype_of_d t d id : Ctype.t =
  if d > max_type_depth then raise (Bad_btf "type reference cycle");
  match get t id with
  | Void -> Ctype.Void
  | Int { name; bits; signed } -> Ctype.Int { name; bits; signed }
  | Float { name; bits } -> Ctype.Float { name; bits }
  | Ptr i -> Ctype.Ptr (ctype_of_d t (d + 1) i)
  | Const i -> Ctype.Const (ctype_of_d t (d + 1) i)
  | Volatile i | Restrict i -> Ctype.Volatile (ctype_of_d t (d + 1) i)
  | Array { elem; nelems; _ } -> Ctype.Array (ctype_of_d t (d + 1) elem, nelems)
  | Struct { name; _ } -> Ctype.Struct_ref name
  | Union { name; _ } -> Ctype.Union_ref name
  | Fwd { name; union } -> if union then Ctype.Union_ref name else Ctype.Struct_ref name
  | Enum { name; _ } -> Ctype.Enum_ref name
  | Typedef { name; _ } -> Ctype.Typedef_ref name
  | Func { proto; _ } -> ctype_of_d t (d + 1) proto
  | Func_proto { ret; params } -> Ctype.Func_proto (proto_of_d t (d + 1) ~ret ~params)

and proto_of_d t d ~ret ~params : Ctype.proto =
  let variadic =
    match List.rev params with { p_name = ""; p_type = 0 } :: _ -> true | _ -> false
  in
  let params = List.filter (fun p -> not (p.p_name = "" && p.p_type = 0)) params in
  {
    ret = ctype_of_d t (d + 1) ret;
    params =
      List.map (fun p -> Ctype.{ pname = p.p_name; ptype = ctype_of_d t (d + 1) p.p_type }) params;
    variadic;
  }

let ctype_of t id = ctype_of_d t 0 id
let proto_of t ~ret ~params = proto_of_d t 0 ~ret ~params

let to_env ~ptr_size t =
  let ctype_of id = ctype_of t id in
  let env = ref (Decl.empty_env ~ptr_size) in
  let funcs = ref [] in
  iteri t (fun _ k ->
      match k with
      | Struct { name; size; members } | Union { name; size; members } ->
          let skind = match k with Union _ -> `Union | _ -> `Struct in
          let fields =
            List.map
              (fun m ->
                Decl.{ fname = m.m_name; ftype = ctype_of m.m_type; bits_offset = m.m_offset_bits })
              members
          in
          env := Decl.add_struct !env { sname = name; skind; byte_size = size; fields }
      | Enum { name; values; _ } -> env := Decl.add_enum !env { ename = name; values }
      | Typedef { name; typ } ->
          env := Decl.add_typedef !env { tname = name; aliased = ctype_of typ }
      | Func { name; proto } -> (
          match get t proto with
          | Func_proto { ret; params } ->
              funcs := Decl.{ fname = name; proto = proto_of t ~ret ~params } :: !funcs
          | _ -> raise (Bad_btf ("func without proto: " ^ name)))
      | Void | Int _ | Ptr _ | Array _ | Fwd _ | Volatile _ | Const _ | Restrict _
      | Func_proto _ | Float _ ->
          ());
  (!env, List.rev !funcs)

(* Like [to_env], but a record whose type references are broken (dangling
   ids, cycles, a Func without a proto — all possible in a partially
   decoded table) degrades to [void] or is skipped, instead of raising. *)
let to_env_lenient ~ptr_size t =
  let bad_refs = ref 0 and bad_funcs = ref 0 in
  let safe_ctype id =
    match ctype_of t id with
    | c -> c
    | exception Bad_btf _ ->
        incr bad_refs;
        Ctype.Void
  in
  let env = ref (Decl.empty_env ~ptr_size) in
  let funcs = ref [] in
  iteri t (fun _ k ->
      match k with
      | Struct { name; size; members } | Union { name; size; members } ->
          let skind = match k with Union _ -> `Union | _ -> `Struct in
          let fields =
            List.map
              (fun m ->
                Decl.
                  { fname = m.m_name; ftype = safe_ctype m.m_type; bits_offset = m.m_offset_bits })
              members
          in
          env := Decl.add_struct !env { sname = name; skind; byte_size = size; fields }
      | Enum { name; values; _ } -> env := Decl.add_enum !env { ename = name; values }
      | Typedef { name; typ } ->
          env := Decl.add_typedef !env { tname = name; aliased = safe_ctype typ }
      | Func { name; proto } -> (
          match get t proto with
          | Func_proto { ret; params } -> (
              match proto_of t ~ret ~params with
              | p -> funcs := Decl.{ fname = name; proto = p } :: !funcs
              | exception Bad_btf _ -> incr bad_funcs)
          | _ | (exception Bad_btf _) -> incr bad_funcs)
      | Void | Int _ | Ptr _ | Array _ | Fwd _ | Volatile _ | Const _ | Restrict _
      | Func_proto _ | Float _ ->
          ());
  let diags =
    (if !bad_refs > 0 then
       [
         Diag.v Diag.Degraded ~component:"btf"
           (Printf.sprintf "%d dangling type references degraded to void" !bad_refs);
       ]
     else [])
    @
    if !bad_funcs > 0 then
      [
        Diag.v Diag.Degraded ~component:"btf"
          (Printf.sprintf "%d funcs without a usable prototype skipped" !bad_funcs);
      ]
    else []
  in
  (!env, List.rev !funcs, diags)

let find_struct t name =
  let found = ref None in
  iteri t (fun id k ->
      match k with
      | (Struct { name = n; _ } | Union { name = n; _ }) when n = name && !found = None ->
          found := Some (id, k)
      | _ -> ());
  !found

let find_func t name =
  let found = ref None in
  iteri t (fun _ k ->
      match k with
      | Func { name = n; proto } when n = name && !found = None -> (
          match get t proto with
          | Func_proto _ -> found := Some proto
          | _ | (exception Bad_btf _) -> ())
      | _ -> ());
  match !found with
  | None -> None
  | Some proto_id -> (
      match get t proto_id with
      | Func_proto { ret; params } -> (
          match proto_of t ~ret ~params with
          | p -> Some Decl.{ fname = name; proto = p }
          | exception Bad_btf _ -> None)
      | _ -> None)

let member_offset t ~struct_name ~field =
  match find_struct t struct_name with
  | None -> None
  | Some (_, (Struct { members; _ } | Union { members; _ })) ->
      List.find_map
        (fun m -> if m.m_name = field then Some (m.m_offset_bits, m.m_type) else None)
        members
  | Some _ -> None

let type_name t id =
  match get t id with
  | Struct { name; _ } | Union { name; _ } | Enum { name; _ } | Fwd { name; _ }
  | Typedef { name; _ } | Int { name; _ } | Float { name; _ } | Func { name; _ } ->
      if name = "" then None else Some name
  | Void | Ptr _ | Array _ | Volatile _ | Const _ | Restrict _ | Func_proto _ -> None
