(** BPF Type Format (BTF) encoder/decoder.

    This follows the real BTF wire format: a header with the [0xeB9F]
    magic, a type section of kind-tagged records (INT, PTR, ARRAY, STRUCT,
    UNION, ENUM, FWD, TYPEDEF, VOLATILE, CONST, FUNC, FUNC_PROTO, FLOAT)
    and a NUL-separated string table. Type ids start at 1; id 0 is [void].

    Two layers are exposed: the low-level record table ({!t}, {!encode},
    {!decode}) and a high-level bridge to {!Ds_ctypes} ({!of_env},
    {!to_env}) used by the mini compiler when emitting a kernel image's
    [.BTF] section and by DepSurf/CO-RE when consuming it. *)

type member = { m_name : string; m_type : int; m_offset_bits : int }
type bparam = { p_name : string; p_type : int }

type kind =
  | Void  (** only as the implicit id 0; never stored *)
  | Int of { name : string; bits : int; signed : bool }
  | Ptr of int
  | Array of { elem : int; index : int; nelems : int }
  | Struct of { name : string; size : int; members : member list }
  | Union of { name : string; size : int; members : member list }
  | Enum of { name : string; size : int; values : (string * int) list }
  | Fwd of { name : string; union : bool }
  | Typedef of { name : string; typ : int }
  | Volatile of int
  | Const of int
  | Restrict of int
  | Func of { name : string; proto : int }
  | Func_proto of { ret : int; params : bparam list }
  | Float of { name : string; bits : int }

type t

exception Bad_btf of string

val create : unit -> t
val add : t -> kind -> int
(** Append a type record; returns its id (first is 1). *)

val get : t -> int -> kind
(** [get t 0] is [Void]. Raises [Bad_btf] on out-of-range ids. *)

val length : t -> int
(** Number of records (ids run 1..length). *)

val iteri : t -> (int -> kind -> unit) -> unit

val encode : t -> string

val decode : ?mode:Ds_util.Diag.mode -> string -> t Ds_util.Diag.outcome
(** Unified entrypoint. [`Strict] (the default) raises [Bad_btf] on the
    first malformed byte and returns empty [diags]. [`Lenient] never
    raises: every record decoded before the first failure point is kept
    and the loss (truncated records, bad string offsets, unsupported
    kinds, bogus section bounds) is described in [diags]. *)

type decode_result = { b_btf : t; b_diags : Ds_util.Diag.t list }

val decode_lenient : string -> decode_result
[@@ocaml.deprecated "use Btf.decode ~mode:`Lenient"]
(** @deprecated Thin wrapper over [decode ~mode:`Lenient]. *)

(** {2 Bridge to the canonical C type model} *)

val of_env : Ds_ctypes.Decl.type_env -> Ds_ctypes.Decl.func_decl list -> t
(** Lower a type environment plus function declarations. References to
    structs that have no definition in the environment become [Fwd]
    records, as real kernels do for opaque types. *)

val to_env : ptr_size:int -> t -> Ds_ctypes.Decl.type_env * Ds_ctypes.Decl.func_decl list
(** Raise a BTF table back into declarations. *)

val to_env_lenient :
  ptr_size:int ->
  t ->
  Ds_ctypes.Decl.type_env * Ds_ctypes.Decl.func_decl list * Ds_util.Diag.t list
(** Like {!to_env}, but broken type references (dangling ids, cycles,
    funcs without a prototype — all possible in a partially decoded
    table) degrade to [void] or are skipped instead of raising. *)

val find_struct : t -> string -> (int * kind) option
(** Find a [Struct] or [Union] record by name. *)

val find_func : t -> string -> Ds_ctypes.Decl.func_decl option

val member_offset : t -> struct_name:string -> field:string -> (int * int) option
(** [member_offset t ~struct_name ~field] is [Some (offset_bits, type_id)]
    for the named field, [None] when struct or field is absent. This is
    the lookup CO-RE relocation performs against the target kernel. *)

val type_name : t -> int -> string option
(** Name of a named record ([Struct], [Typedef], ...), [None] for
    anonymous kinds. *)
