(** Regeneration of the paper's 53-program corpus: each Table 7 profile is
    turned into a build spec (hand-pinned catalog dependencies for the
    case-study tools, pool-drawn dependencies elsewhere), compiled into a
    real object file, and handed to the DepSurf analysis. *)

open Ds_ksrc

val spec_for : Pools.t -> Table7.profile -> Ds_bpf.Progbuild.spec

val build_all :
  Depsurf.Dataset.t ->
  ?build:Version.t * Config.t ->
  unit ->
  (Table7.profile * Ds_bpf.Obj.t) list
(** All 53 objects, round-tripped through the wire format. Pools are
    computed once from the dataset. *)

val analyze_all :
  Depsurf.Dataset.t ->
  ?pool:Ds_util.Par.pool ->
  ?images:(Version.t * Config.t) list ->
  ?baseline:Version.t * Config.t ->
  (Table7.profile * Ds_bpf.Obj.t) list ->
  (Table7.profile * Depsurf.Report.mismatch_summary) list
(** Run the Figure-4 style analysis for every program and summarize (the
    measured Table 7). With [pool], the per-program matrices are computed
    through {!Ds_util.Par.map_list} (result order unchanged). *)

val analyze_all_matrices :
  Depsurf.Dataset.t ->
  ?pool:Ds_util.Par.pool ->
  ?images:(Version.t * Config.t) list ->
  ?baseline:Version.t * Config.t ->
  (Table7.profile * Ds_bpf.Obj.t) list ->
  (Table7.profile * Depsurf.Report.matrix * Depsurf.Report.mismatch_summary) list
(** Like {!analyze_all} but keeps the full per-dependency matrices (used
    by the Table 8 aggregation). *)
