open Ds_ksrc
open Ds_bpf

(* Hand-pinned dependencies for the paper's case-study tools, so Figure 4
   reproduces with the real construct names. *)
type hints = {
  h_funcs : string list;
  h_tps : string list;
  h_fields : (string * string list) list;
}

let no_hints = { h_funcs = []; h_tps = []; h_fields = [] }

let hints_for = function
  | "biotop" ->
      {
        h_funcs =
          [
            "blk_mq_start_request";
            "blk_account_io_start";
            "blk_account_io_done";
            "__blk_account_io_start";
            "__blk_account_io_done";
          ];
        h_tps = [ "block_io_start"; "block_io_done" ];
        h_fields = [ ("request", [ "__sector" ]); ("request", [ "rq_disk" ]) ];
      }
  | "readahead" ->
      {
        h_funcs =
          [
            "__do_page_cache_readahead";
            "do_page_cache_ra";
            "__page_cache_alloc";
            "filemap_alloc_folio";
          ];
        h_tps = [];
        h_fields = [ ("folio", [ "flags" ]) ];
      }
  | "biosnoop" ->
      {
        h_funcs = [ "blk_account_io_start" ];
        h_tps = [ "block_rq_issue"; "block_rq_insert"; "block_rq_complete"; "block_io_done" ];
        h_fields = [ ("request", [ "__sector" ]); ("request", [ "rq_disk" ]) ];
      }
  | "biostacks" ->
      {
        h_funcs = [ "blk_account_io_start" ];
        h_tps = [ "block_io_start"; "block_io_done" ];
        h_fields = [ ("request", [ "__sector" ]) ];
      }
  | "biolatency" ->
      {
        h_funcs = [];
        h_tps = [ "block_rq_issue"; "block_rq_insert"; "block_rq_complete" ];
        h_fields = [ ("request", [ "__sector" ]) ];
      }
  | "runqlat" | "runqslower" ->
      { h_funcs = []; h_tps = [ "sched_switch"; "sched_wakeup" ]; h_fields = [] }
  | "oomkill" ->
      {
        h_funcs = [];
        h_tps = [];
        h_fields = [ ("task_struct", [ "comm" ]); ("task_struct", [ "pid" ]) ];
      }
  | "syncsnoop" -> { h_funcs = []; h_tps = []; h_fields = [] }
  | _ -> no_hints

let take n xs = List.filteri (fun i _ -> i < n) xs
let pad_to n filler xs = if List.length xs >= n then take n xs else xs @ filler (n - List.length xs)

(* dedup preserving first occurrence, so pinned catalog deps survive the
   final truncation to the paper's Σ *)
let dedup xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    xs

let category_of_tp name = Ds_util.Strutil.prefix_before ~on:'_' ~default:"misc" name

let spec_for pools (pr : Table7.profile) =
  let c = pr.Table7.pr_counts in
  let fn_total, fn_a, fn_c, fn_f, fn_s, fn_t, fn_d = c.Table7.c_fn in
  let fld_total, fld_a, fld_c = c.Table7.c_fld in
  let tp_total, tp_a, tp_c = c.Table7.c_tp in
  let sc_total, sc_a = c.Table7.c_sc in
  let hints = hints_for pr.Table7.pr_name in
  (* Functions: pinned first, then property picks, padded with stable. *)
  let funcs =
    if pr.Table7.pr_clean then pad_to fn_total (Pools.take_funcs pools `Stable) []
    else
      let picks =
        hints.h_funcs
        @ Pools.take_funcs pools `Absent (max 0 (fn_a - List.length hints.h_funcs))
        @ Pools.take_funcs pools `Changed fn_c
        @ Pools.take_funcs pools `Full fn_f
        @ Pools.take_funcs pools `Selective fn_s
        @ Pools.take_funcs pools `Transformed fn_t
        @ Pools.take_funcs pools `Duplicated fn_d
      in
      pad_to fn_total (Pools.take_funcs pools `Stable) (dedup picks)
  in
  let tps =
    if pr.Table7.pr_clean then pad_to tp_total (Pools.take_tracepoints pools `Stable) []
    else
      let picks =
        hints.h_tps
        @ Pools.take_tracepoints pools `Absent (max 0 (tp_a - List.length hints.h_tps))
        @ Pools.take_tracepoints pools `Changed tp_c
      in
      pad_to tp_total (Pools.take_tracepoints pools `Stable) (dedup picks)
  in
  let scs =
    if pr.Table7.pr_clean then pad_to sc_total (Pools.take_syscalls pools `Stable) []
    else
      pad_to sc_total (Pools.take_syscalls pools `Stable)
        (dedup (Pools.take_syscalls pools `Absent sc_a))
  in
  let stable_filler n =
    List.map (fun (s, f) -> (s, [ f ])) (Pools.take_fields pools `Stable n)
  in
  let fields =
    if pr.Table7.pr_clean then pad_to fld_total stable_filler []
    else
      let picks =
        List.concat_map (fun (s, path) -> [ (s, path) ]) hints.h_fields
        @ List.map
            (fun (s, f) -> (s, [ f ]))
            (Pools.take_fields pools `Absent (max 0 (fld_a - List.length hints.h_fields))
            @ Pools.take_fields pools `Changed fld_c)
      in
      pad_to fld_total stable_filler (dedup picks)
  in
  let reads =
    List.map
      (fun (s, path) ->
        Progbuild.{ rd_struct = s; rd_path = path; rd_exists_check = false })
      (match fields with
      | (s, path) :: rest when pr.Table7.pr_clean = false ->
          (* representative CO-RE guard, as the fixed tools do *)
          (s, path) :: rest
      | l -> l)
  in
  let hooks =
    List.map
      (fun f -> Progbuild.{ hs_hook = Hook.Kprobe f; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] })
      funcs
    @ List.map
        (fun tp ->
          Progbuild.
            {
              hs_hook = Hook.Tracepoint { category = category_of_tp tp; event = tp };
              hs_arg_indices = []; hs_kfuncs = [];
              hs_reads = [];
            })
        tps
    @ List.map
        (fun sc ->
          Progbuild.{ hs_hook = Hook.Syscall_enter sc; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] })
        scs
  in
  let hooks =
    if hooks = [] then
      [ Progbuild.{ hs_hook = Hook.Perf_event; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] } ]
    else hooks
  in
  (* attach the reads to the first hook *)
  let hooks =
    match hooks with
    | first :: rest -> { first with Progbuild.hs_reads = reads } :: rest
    | [] -> assert false
  in
  Progbuild.{ sp_tool = pr.Table7.pr_name; sp_hooks = hooks }

let obj_key ds ~build pr =
  Depsurf.Dataset.cache_key ds
    ~label:("obj-" ^ pr.Table7.pr_name)
    [ Version.to_string (fst build) ^ "/" ^ Config.to_string (snd build) ]

let build_all ds ?(build = (Version.v 5 4, Config.x86_generic)) () =
  Ds_trace.Trace.span ~name:"corpus.build_all" @@ fun () ->
  (* Persistent caching of the built objects is all-or-nothing: the pool
     draws in [spec_for] advance mutable cursors, so rebuilding only the
     missing programs would hand them different draws than a full build.
     Either every object loads from the store, or all are rebuilt. *)
  let store = Depsurf.Dataset.store ds in
  let cached =
    match store with
    | None -> None
    | Some store ->
        let rec go acc = function
          | [] -> Some (List.rev acc)
          | pr :: rest -> (
              match
                Ds_store.Store.find store ~ns:"obj" ~key:(obj_key ds ~build pr)
                  ~decode:(fun b -> Ds_util.Diag.ok (Obj.read b))
              with
              | Some obj -> go ((pr, obj) :: acc) rest
              | None -> None)
        in
        go [] Table7.programs
  in
  match cached with
  | Some built -> built
  | None ->
      let pools = Pools.compute ds ~baseline:build () in
      let built =
        List.map
          (fun pr ->
            let spec = spec_for pools pr in
            (pr, Depsurf.Pipeline.build_program ds ~build spec))
          Table7.programs
      in
      (match store with
      | None -> ()
      | Some store ->
          List.iter
            (fun (pr, obj) ->
              Ds_store.Store.add store ~ns:"obj" ~key:(obj_key ds ~build pr) (Obj.write obj))
            built);
      built

let analyze_all_matrices ds ?pool ?(images = Depsurf.Dataset.fig4_images)
    ?(baseline = (Version.v 5 4, Config.x86_generic)) built =
  (* warm the image set first so the per-program fan-out only reads the
     memo tables; with a pool both phases run across domains *)
  Depsurf.Dataset.warm_list ?pool ds (baseline :: images);
  let analyze (pr, obj) =
    (* through [Pipeline.analyze], so matrices land in the persistent
       tier too *)
    Ds_trace.Trace.span ~name:"corpus.analyze" ~attrs:[ ("program", pr.Table7.pr_name) ]
      (fun () ->
        let m = Depsurf.Pipeline.analyze ds ~images ~baseline obj in
        (pr, m, Depsurf.Report.summarize m))
  in
  match pool with
  | None -> List.map analyze built
  | Some p -> Ds_util.Par.map_list_chunked p analyze built

let analyze_all ds ?pool ?images ?baseline built =
  List.map (fun (pr, _, s) -> (pr, s)) (analyze_all_matrices ds ?pool ?images ?baseline built)
