open Ds_util

type machine = X86_64 | Aarch64 | Arm | Ppc64 | Riscv64 | Bpf

let machine_to_string = function
  | X86_64 -> "x86"
  | Aarch64 -> "arm64"
  | Arm -> "arm32"
  | Ppc64 -> "ppc"
  | Riscv64 -> "riscv"
  | Bpf -> "bpf"

let machine_endian = function
  | Ppc64 -> Bytesio.Big
  | X86_64 | Aarch64 | Arm | Riscv64 | Bpf -> Bytesio.Little

let machine_ptr_size = function Arm -> 4 | X86_64 | Aarch64 | Ppc64 | Riscv64 | Bpf -> 8

(* e_machine values from the ELF specification. *)
let machine_code = function
  | X86_64 -> 62
  | Aarch64 -> 183
  | Arm -> 40
  | Ppc64 -> 21
  | Riscv64 -> 243
  | Bpf -> 247

let machine_of_code = function
  | 62 -> X86_64
  | 183 -> Aarch64
  | 40 -> Arm
  | 21 -> Ppc64
  | 243 -> Riscv64
  | 247 -> Bpf
  | c -> invalid_arg (Printf.sprintf "unknown e_machine %d" c)

type sym_bind = Local | Global | Weak

type symbol = {
  sym_name : string;
  sym_value : int64;
  sym_size : int;
  sym_bind : sym_bind;
  sym_section : string;
}

type section = { sec_name : string; sec_addr : int64; sec_data : string }
type t = { machine : machine; sections : section list; symbols : symbol list }

exception Bad_elf of string

let ehdr_size = 64
let shdr_size = 64
let sym_size = 24

(* A string table: offset 0 is the empty string. *)
module Strtab = struct
  type t = { buf : Buffer.t; mutable offsets : (string * int) list }

  let create () =
    let buf = Buffer.create 256 in
    Buffer.add_char buf '\000';
    { buf; offsets = [ ("", 0) ] }

  let add t s =
    match List.assoc_opt s t.offsets with
    | Some off -> off
    | None ->
        let off = Buffer.length t.buf in
        Buffer.add_string t.buf s;
        Buffer.add_char t.buf '\000';
        t.offsets <- (s, off) :: t.offsets;
        off

  let contents t = Buffer.contents t.buf
end

let bind_code = function Local -> 0 | Global -> 1 | Weak -> 2

let bind_of_code = function
  | 0 -> Local
  | 1 -> Global
  | 2 -> Weak
  | c -> raise (Bad_elf (Printf.sprintf "bad symbol bind %d" c))

let write t =
  let endian = machine_endian t.machine in
  (* Build .strtab + .symtab if there are symbols. *)
  let user_sections = t.sections in
  let section_index name =
    (* Index in the final header table: 0 is SHN_UNDEF, user sections
       follow in order. *)
    let rec go i = function
      | [] -> 0
      | s :: _ when s.sec_name = name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 1 user_sections
  in
  let extra_sections =
    if t.symbols = [] then []
    else begin
      let strtab = Strtab.create () in
      let w = Bytesio.Writer.create ~endian () in
      (* Null symbol first, as the spec requires. *)
      Bytesio.Writer.bytes w (String.make sym_size '\000');
      List.iter
        (fun sym ->
          let name_off = Strtab.add strtab sym.sym_name in
          Bytesio.Writer.u32 w name_off;
          Bytesio.Writer.u8 w (bind_code sym.sym_bind lsl 4 lor 2 (* STT_FUNC *));
          Bytesio.Writer.u8 w 0;
          Bytesio.Writer.u16 w (section_index sym.sym_section);
          Bytesio.Writer.u64 w sym.sym_value;
          Bytesio.Writer.uint w sym.sym_size)
        t.symbols;
      [
        { sec_name = ".symtab"; sec_addr = 0L; sec_data = Bytesio.Writer.contents w };
        { sec_name = ".strtab"; sec_addr = 0L; sec_data = Strtab.contents strtab };
      ]
    end
  in
  let shstrtab = Strtab.create () in
  let sections = user_sections @ extra_sections in
  let name_offs = List.map (fun s -> Strtab.add shstrtab s.sec_name) sections in
  let shstr_off = Strtab.add shstrtab ".shstrtab" in
  let shstr_data = Strtab.contents shstrtab in
  let all = sections @ [ { sec_name = ".shstrtab"; sec_addr = 0L; sec_data = shstr_data } ] in
  let name_offs = name_offs @ [ shstr_off ] in
  (* Layout: ehdr, section bodies (8-aligned), section header table. *)
  let body = Bytesio.Writer.create ~endian () in
  let offsets =
    List.map
      (fun s ->
        Bytesio.Writer.align body 8;
        let off = ehdr_size + Bytesio.Writer.pos body in
        Bytesio.Writer.bytes body s.sec_data;
        off)
      all
  in
  Bytesio.Writer.align body 8;
  let shoff = ehdr_size + Bytesio.Writer.pos body in
  let shnum = List.length all + 1 in
  let out = Bytesio.Writer.create ~endian () in
  (* ELF header *)
  Bytesio.Writer.bytes out "\x7fELF";
  Bytesio.Writer.u8 out 2 (* ELFCLASS64 container *);
  Bytesio.Writer.u8 out (match endian with Bytesio.Little -> 1 | Bytesio.Big -> 2);
  Bytesio.Writer.u8 out 1 (* EV_CURRENT *);
  Bytesio.Writer.bytes out (String.make 9 '\000');
  Bytesio.Writer.u16 out 2 (* ET_EXEC *);
  Bytesio.Writer.u16 out (machine_code t.machine);
  Bytesio.Writer.u32 out 1;
  Bytesio.Writer.u64 out 0L (* e_entry *);
  Bytesio.Writer.u64 out 0L (* e_phoff *);
  Bytesio.Writer.uint out shoff;
  Bytesio.Writer.u32 out 0 (* e_flags *);
  Bytesio.Writer.u16 out ehdr_size;
  Bytesio.Writer.u16 out 0;
  Bytesio.Writer.u16 out 0 (* no program headers *);
  Bytesio.Writer.u16 out shdr_size;
  Bytesio.Writer.u16 out shnum;
  Bytesio.Writer.u16 out (shnum - 1) (* shstrndx: .shstrtab is the last header *);
  assert (Bytesio.Writer.pos out = ehdr_size);
  Bytesio.Writer.bytes out (Bytesio.Writer.contents body);
  (* Section header table: null entry then one per section. *)
  let shdr ~name_off ~addr ~off ~size =
    Bytesio.Writer.u32 out name_off;
    Bytesio.Writer.u32 out 1 (* SHT_PROGBITS *);
    Bytesio.Writer.u64 out (if Int64.compare addr 0L <> 0 then 2L else 0L) (* SHF_ALLOC *);
    Bytesio.Writer.u64 out addr;
    Bytesio.Writer.uint out off;
    Bytesio.Writer.uint out size;
    Bytesio.Writer.u32 out 0;
    Bytesio.Writer.u32 out 0;
    Bytesio.Writer.u64 out 0L;
    Bytesio.Writer.u64 out 0L
  in
  shdr ~name_off:0 ~addr:0L ~off:0 ~size:0;
  List.iteri
    (fun i s ->
      shdr ~name_off:(List.nth name_offs i) ~addr:s.sec_addr ~off:(List.nth offsets i)
        ~size:(String.length s.sec_data))
    all;
  Bytesio.Writer.contents out

(* The shstrndx trick above: the null header is index 0, user sections are
   1..n, .shstrtab is index n (the last); shnum = n + 1, so shstrndx must
   be shnum - 1. *)

type read_result = { r_elf : t; r_diags : Diag.t list }

(* Shared strict/lenient reader core. In strict mode every diagnostic
   raises [Bad_elf] immediately (the historical fail-fast behaviour, with
   the historical messages); in lenient mode diagnostics are collected,
   broken pieces are skipped, and whatever parsed cleanly is returned.
   [Stop elf] aborts lenient parsing early with a partial image after a
   fatal diagnostic has been recorded. *)
exception Stop of t

let read_impl ~strict data =
  let collector = Diag.Collector.create () in
  let diag ?context ?offset severity msg =
    if strict then raise (Bad_elf msg)
    else Diag.Collector.emit collector (Diag.v ?context ?offset severity ~component:"elf" msg)
  in
  let stub machine = { machine; sections = []; symbols = [] } in
  let fatal ?context ?offset elf msg =
    diag ?context ?offset Diag.Fatal msg;
    raise (Stop elf)
  in
  let len = String.length data in
  let elf =
    try
      if len < ehdr_size then fatal ~offset:len (stub X86_64) "too short";
      if not (data.[0] = '\x7f' && data.[1] = 'E' && data.[2] = 'L' && data.[3] = 'F') then
        fatal ~offset:0 (stub X86_64) "bad magic";
      let endian =
        match data.[5] with
        | '\001' -> Bytesio.Little
        | '\002' -> Bytesio.Big
        | _ -> fatal ~offset:5 (stub X86_64) "bad EI_DATA"
      in
      let r = Bytesio.Reader.of_string ~endian data in
      Bytesio.Reader.seek r 18;
      let machine =
        match machine_of_code (Bytesio.Reader.u16 r) with
        | m -> m
        | exception Invalid_argument m ->
            (* Satellite bugfix: an unknown e_machine is a degraded surface
               (fall back to x86-64 layout), not an abort — except under
               --strict, where the historical message is preserved. *)
            diag ~offset:18 ~context:"Unknown_machine" Diag.Degraded m;
            X86_64
      in
      let shoff, shentsize, shnum, shstrndx =
        try
          Bytesio.Reader.seek r 40;
          let shoff = Bytesio.Reader.uint r in
          Bytesio.Reader.seek r 58;
          let shentsize = Bytesio.Reader.u16 r in
          let shnum = Bytesio.Reader.u16 r in
          let shstrndx = Bytesio.Reader.u16 r in
          (shoff, shentsize, shnum, shstrndx)
        with Bytesio.Truncated what ->
          fatal ~offset:40 (stub machine) ("truncated: " ^ what)
      in
      if shentsize <> shdr_size then fatal ~offset:58 (stub machine) "bad shentsize";
      if shstrndx >= shnum then fatal ~offset:62 (stub machine) "bad shstrndx";
      let read_shdr i =
        Bytesio.Reader.seek r (shoff + (i * shdr_size));
        let name_off = Bytesio.Reader.u32 r in
        let _typ = Bytesio.Reader.u32 r in
        let _flags = Bytesio.Reader.u64 r in
        let addr = Bytesio.Reader.u64 r in
        let off = Bytesio.Reader.uint r in
        let size = Bytesio.Reader.uint r in
        (name_off, addr, off, size)
      in
      let shstr =
        try
          let _, _, shstr_off, shstr_size = read_shdr shstrndx in
          Bytesio.Reader.sub r ~pos:shstr_off ~len:shstr_size
        with Bytesio.Truncated what ->
          fatal ~offset:shoff (stub machine) ("truncated: " ^ what)
      in
      let section_name off = Bytesio.Reader.cstring_at shstr off in
      (* Section headers are laid out sequentially: once one fails to read,
         the rest of the table is gone too — one diagnostic, not 64k. *)
      let headers = ref [] in
      Ds_trace.Trace.span ~name:"elf.shdrs"
        ~attrs:[ ("shnum", string_of_int shnum) ]
        (fun () ->
          try
            for i = 1 to shnum - 1 do
              headers := (i, read_shdr i) :: !headers
            done
          with Bytesio.Truncated what ->
            diag ~offset:shoff Diag.Degraded
              (Printf.sprintf "section header table truncated (%s)" what));
      let named =
        List.filter_map
          (fun (i, (name_off, addr, off, size)) ->
            match section_name name_off with
            | name -> Some (i, name, addr, off, size)
            | exception Bytesio.Truncated _ ->
                diag
                  ~offset:(shoff + (i * shdr_size))
                  Diag.Degraded
                  (Printf.sprintf "section %d: name offset %d outside .shstrtab" i name_off);
                None)
          (List.rev !headers)
      in
      let sections =
        List.filter_map
          (fun (i, name, addr, off, size) ->
            if name = ".shstrtab" then None
              (* Satellite bugfix: a bogus sh_offset/sh_size used to escape
                 as an uncaught [Invalid_argument] from [String.sub]. *)
            else if off < 0 || size < 0 || off > len || size > len - off then begin
              diag ~context:name
                ~offset:(shoff + (i * shdr_size))
                Diag.Degraded
                (Printf.sprintf "section %s out of bounds (off %d size %d, file %d bytes)" name
                   off size len);
              None
            end
            else Some { sec_name = name; sec_addr = addr; sec_data = String.sub data off size })
          named
      in
      let find name = List.find_opt (fun s -> s.sec_name = name) sections in
      let symbols =
        Ds_trace.Trace.span ~name:"elf.symtab" (fun () ->
        match (find ".symtab", find ".strtab") with
        | Some symtab, Some strtab ->
            let str = Bytesio.Reader.of_string ~endian strtab.sec_data in
            let sr = Bytesio.Reader.of_string ~endian symtab.sec_data in
            let n = String.length symtab.sec_data / sym_size in
            let non_meta =
              List.filter
                (fun s -> s.sec_name <> ".symtab" && s.sec_name <> ".strtab")
                sections
            in
            let section_by_index i =
              (* header index 1..n maps to user sections in order; index 0
                 (SHN_UNDEF, e.g. from a zeroed record) has no section —
                 [List.nth_opt] raises on the negative index, not None *)
              if i <= 0 then ""
              else match List.nth_opt non_meta (i - 1) with Some s -> s.sec_name | None -> ""
            in
            let parse i =
              Bytesio.Reader.seek sr ((i + 1) * sym_size);
              let name_off = Bytesio.Reader.u32 sr in
              let info = Bytesio.Reader.u8 sr in
              let _other = Bytesio.Reader.u8 sr in
              let shndx = Bytesio.Reader.u16 sr in
              let value = Bytesio.Reader.u64 sr in
              let size = Bytesio.Reader.uint sr in
              {
                sym_name = Bytesio.Reader.cstring_at str name_off;
                sym_value = value;
                sym_size = size;
                sym_bind = bind_of_code (info lsr 4);
                sym_section = section_by_index shndx;
              }
            in
            let out = ref [] in
            let bad = ref 0 in
            for i = 0 to n - 2 do
              match parse i with
              | s -> out := s :: !out
              | exception Bad_elf m ->
                  if strict then raise (Bad_elf m);
                  incr bad
              | exception Bytesio.Truncated what ->
                  if strict then raise (Bad_elf ("truncated: " ^ what));
                  incr bad
            done;
            if !bad > 0 then
              diag ~context:".symtab" Diag.Degraded
                (Printf.sprintf "%d of %d symbol records malformed (skipped)" !bad (n - 1));
            List.rev !out
        | _ -> [])
      in
      let sections =
        List.filter (fun s -> s.sec_name <> ".symtab" && s.sec_name <> ".strtab") sections
      in
      { machine; sections; symbols }
    with Stop partial -> partial
  in
  { r_elf = elf; r_diags = Diag.Collector.diags collector }

let read ?(mode = `Strict) data =
  Ds_trace.Trace.span ~name:"elf.read"
    ~attrs:[ ("bytes", string_of_int (String.length data)) ]
    (fun () ->
      match mode with
      | `Strict ->
          let r =
            try read_impl ~strict:true data
            with Bytesio.Truncated what -> raise (Bad_elf ("truncated: " ^ what))
          in
          Diag.outcome r.r_elf
      | `Lenient ->
          let r = read_impl ~strict:false data in
          Diag.outcome ~diags:r.r_diags r.r_elf)

let read_lenient data =
  let o = read ~mode:`Lenient data in
  { r_elf = o.Diag.ok; r_diags = o.Diag.diags }

let find_section t name = List.find_opt (fun s -> s.sec_name = name) t.sections

let section_reader t name =
  Option.map
    (fun s -> Bytesio.Reader.of_string ~endian:(machine_endian t.machine) s.sec_data)
    (find_section t name)

let find_symbol t name = List.find_opt (fun s -> s.sym_name = name) t.symbols
let symbols_at t addr = List.filter (fun s -> Int64.equal s.sym_value addr) t.symbols

module Deref = struct
  type image = t
  type nonrec t = { img : image; endian : Bytesio.endian; ptr_size : int }

  let make img =
    { img; endian = machine_endian img.machine; ptr_size = machine_ptr_size img.machine }

  let endian t = t.endian
  let ptr_size t = t.ptr_size

  let locate t addr =
    List.find_opt
      (fun s ->
        Int64.compare s.sec_addr 0L <> 0
        && Int64.compare addr s.sec_addr >= 0
        && Int64.compare addr (Int64.add s.sec_addr (Int64.of_int (String.length s.sec_data))) < 0)
      t.img.sections

  let in_image t addr = Option.is_some (locate t addr)

  let reader_at t addr =
    match locate t addr with
    | None -> raise (Bad_elf (Printf.sprintf "unmapped address 0x%Lx" addr))
    | Some s ->
        let off = Int64.to_int (Int64.sub addr s.sec_addr) in
        let r = Bytesio.Reader.of_string ~endian:t.endian s.sec_data in
        Bytesio.Reader.seek r off;
        r

  let read_ptr t addr =
    let r = reader_at t addr in
    if t.ptr_size = 8 then Bytesio.Reader.u64 r
    else Int64.of_int (Bytesio.Reader.u32 r)

  let read_u32 t addr = Bytesio.Reader.u32 (reader_at t addr)
  let read_cstring t addr = Bytesio.Reader.cstring (reader_at t addr)
end
