(** A compact ELF64 container: enough of the real format for `vmlinux`-like
    images and eBPF object files.

    The writer emits a well-formed ELF64 file — header, section bodies,
    section-header table, `.shstrtab`, and (when symbols are present) a
    real `.symtab`/`.strtab` pair with Elf64_Sym records. The reader parses
    it back. Both honour byte order (our ppc images are big-endian), and
    {!Deref} resolves virtual addresses into section bytes, which is how
    tracepoints and the `sys_call_table` are discovered without booting the
    kernel (paper §3.4). *)

type machine = X86_64 | Aarch64 | Arm | Ppc64 | Riscv64 | Bpf

val machine_to_string : machine -> string
val machine_endian : machine -> Ds_util.Bytesio.endian
val machine_ptr_size : machine -> int
(** 8 for the 64-bit machines, 4 for [Arm] (arm32). *)

type sym_bind = Local | Global | Weak

type symbol = {
  sym_name : string;
  sym_value : int64;  (** virtual address *)
  sym_size : int;
  sym_bind : sym_bind;
  sym_section : string;  (** name of the section the symbol lives in *)
}

type section = {
  sec_name : string;
  sec_addr : int64;  (** virtual load address; 0 for non-allocated sections *)
  sec_data : string;
}

type t = {
  machine : machine;
  sections : section list;
  symbols : symbol list;
}

exception Bad_elf of string

val write : t -> string
(** Serialize to ELF64 bytes. *)

val read : ?mode:Ds_util.Diag.mode -> string -> t Ds_util.Diag.outcome
(** Unified entrypoint. [`Strict] (the default) parses bytes produced by
    {!write} (or any file using the same subset) and raises [Bad_elf] on
    the first malformed byte, returning empty [diags]. [`Lenient] never
    raises: whatever parses cleanly is kept (malformed sections, symbol
    records or an unknown [e_machine] are skipped or defaulted) and
    everything lost is described in [diags]; an unrecoverable failure
    (not an ELF file at all) yields an empty image plus a [Fatal]
    diagnostic. *)

type read_result = { r_elf : t; r_diags : Ds_util.Diag.t list }

val read_lenient : string -> read_result
[@@ocaml.deprecated "use Elf.read ~mode:`Lenient"]
(** @deprecated Thin wrapper over [read ~mode:`Lenient]. *)

val find_section : t -> string -> section option
val section_reader : t -> string -> Ds_util.Bytesio.Reader.t option
(** Reader over a section's bytes, with the image's endianness. *)

val find_symbol : t -> string -> symbol option
(** First symbol with that name ([None] if absent). *)

val symbols_at : t -> int64 -> symbol list
(** All symbols whose value equals the address. *)

module Deref : sig
  type image = t
  type t

  val make : image -> t
  val endian : t -> Ds_util.Bytesio.endian
  val ptr_size : t -> int

  val in_image : t -> int64 -> bool
  (** Whether the address falls inside an allocated section. *)

  val read_ptr : t -> int64 -> int64
  (** Read a pointer-sized word at a virtual address (4 bytes on arm32,
      8 elsewhere; byte order per machine). Raises [Bad_elf] when the
      address is not mapped. *)

  val read_u32 : t -> int64 -> int
  val read_cstring : t -> int64 -> string
  val reader_at : t -> int64 -> Ds_util.Bytesio.Reader.t
  (** Reader positioned at the virtual address, spanning the rest of its
      section. *)
end
