(** Seeded misbehaving-HTTP-client scenarios for the serve front-end's
    chaos suite ([@serve-chaos]).

    Like {!Faultgen} for BPF objects, this is the generator half of a
    survey: pure, deterministic data describing {e how} a client
    misbehaves at the socket level, with the actual socket I/O owned by
    the driver. The taxonomy:

    - well-formed requests (control group — must answer 200);
    - slow trickle (slowloris): a valid request dribbled a few bytes at
      a time (server read-timeout → 408, or 200 if it completes);
    - torn request: a prefix of a valid request, then the client
      vanishes;
    - stall: connect, send little or nothing, wait out the server;
    - mid-response abort: valid request, read a few bytes, slam the
      connection while the server writes;
    - churn: connect and immediately abort;
    - oversized header block (> 64KiB → 431);
    - oversized declared body (> 16MiB → 413);
    - garbage bytes (→ 400).

    The invariants the driver asserts: the server never crashes, never
    leaks an fd, answers every answerable scenario with an expected
    status, and every >= 400 answer is a structured JSON envelope. *)

type step =
  | Send of string  (** write these bytes *)
  | Pause of float  (** sleep this many seconds before the next step *)
  | Recv of int  (** read up to this many response bytes (0 = to EOF) *)
  | Abort  (** close the socket immediately *)

type expectation =
  | Any_status of int list
      (** the server must answer with one of these statuses *)
  | No_answer
      (** the client behaved such that no answer can be required *)

type scenario

val name : scenario -> string
val steps : scenario -> step list
val expect : scenario -> expectation

val generate : seed:int64 -> int -> scenario list
(** [generate ~seed n]: [n] scenarios, deterministic in [seed]. The
    first scenarios cover each kind of the taxonomy once; the rest are
    drawn at random. *)
