module Prng = Ds_util.Prng

(* Seeded misbehaving-HTTP-client scenarios for the serve front-end.
   Pure data: a scenario is a list of socket-level steps; the driver
   (test/chaos_main.ml) owns the actual sockets, so this module stays
   unix-free and the same seed always yields the same byte stream. *)

type step =
  | Send of string  (** write these bytes *)
  | Pause of float  (** sleep this many seconds before the next step *)
  | Recv of int  (** read up to this many response bytes (0 = to EOF) *)
  | Abort  (** close the socket immediately, mid-whatever *)

type expectation =
  | Any_status of int list
      (** the server must answer one of these statuses, as a structured
          JSON envelope for >= 400 *)
  | No_answer  (** the client gave the server nothing answerable *)

type scenario = { sc_name : string; sc_steps : step list; sc_expect : expectation }

let name s = s.sc_name
let steps s = s.sc_steps
let expect s = s.sc_expect

let get path = Printf.sprintf "GET %s HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n" path

let paths = [ "/healthz"; "/v1/healthz"; "/images"; "/v1/metrics" ]

let well_formed prng =
  let path = Prng.pick_list prng paths in
  {
    sc_name = "well-formed " ^ path;
    sc_steps = [ Send (get path); Recv 0 ];
    sc_expect = Any_status [ 200 ];
  }

(* Slowloris: dribble a valid request a few bytes at a time. With the
   driver's short read timeout the server answers 408 long before the
   request completes; with a long one it would eventually answer 200 —
   both are acceptable, crashing or hanging forever is not. *)
let slow_trickle prng =
  let req = get (Prng.pick_list prng paths) in
  let chunk = 1 + Prng.int prng 3 in
  let delay = 0.05 +. Prng.float prng 0.1 in
  let rec cut i acc =
    if i >= String.length req then List.rev acc
    else
      let n = min chunk (String.length req - i) in
      cut (i + n) (Pause delay :: Send (String.sub req i n) :: acc)
  in
  {
    sc_name = Printf.sprintf "slow-trickle chunk=%d" chunk;
    sc_steps = cut 0 [] @ [ Recv 0 ];
    sc_expect = Any_status [ 200; 408 ];
  }

(* Torn request: send a prefix of a valid request, then vanish. *)
let torn_request prng =
  let req = get (Prng.pick_list prng paths) in
  let keep = 1 + Prng.int prng (String.length req - 2) in
  {
    sc_name = Printf.sprintf "torn-request keep=%d" keep;
    sc_steps = [ Send (String.sub req 0 keep); Abort ];
    sc_expect = No_answer;
  }

(* Stall: open a connection, send nothing (or a fragment), and sit
   until the server's read timeout evicts us. *)
let stall prng =
  let fragment = Prng.bool prng 0.5 in
  {
    sc_name = (if fragment then "stall after fragment" else "stall silent");
    sc_steps =
      (if fragment then [ Send "GET /heal" ] else []) @ [ Pause 2.0; Recv 0 ];
    sc_expect = Any_status [ 408 ];
  }

(* Mid-response abort: issue a valid request, read a few bytes of the
   answer, then slam the connection while the server is still writing. *)
let midresponse_abort prng =
  let path = Prng.pick_list prng paths in
  {
    sc_name = "mid-response abort " ^ path;
    sc_steps = [ Send (get path); Recv (1 + Prng.int prng 64); Abort ];
    sc_expect = No_answer;
  }

(* Connection churn is a driver-side behaviour (many short-lived
   sockets); as a scenario it is simply connect-then-abort. *)
let churn _prng =
  { sc_name = "churn connect-abort"; sc_steps = [ Abort ]; sc_expect = No_answer }

(* Oversized header block: a single header line pushes the head past
   the server's 64KiB cap; must be rejected with 431, not buffered
   without bound. *)
let oversized_headers prng =
  let pad = 70_000 + Prng.int prng 10_000 in
  let req =
    Printf.sprintf "GET /healthz HTTP/1.1\r\nHost: chaos\r\nX-Pad: %s\r\nConnection: close\r\n\r\n"
      (String.make pad 'a')
  in
  {
    sc_name = Printf.sprintf "oversized-headers pad=%d" pad;
    sc_steps = [ Send req; Recv 0 ];
    sc_expect = Any_status [ 431 ];
  }

(* Oversized body: a Content-Length over the 16MiB body cap must be
   refused up front (413) — the server must not try to buffer it. *)
let oversized_body prng =
  let cl = 17_000_000 + Prng.int prng 1_000_000 in
  let req =
    Printf.sprintf
      "POST /v1/mismatch HTTP/1.1\r\nHost: chaos\r\nContent-Length: %d\r\nConnection: close\r\n\r\nxx"
      cl
  in
  {
    sc_name = Printf.sprintf "oversized-body cl=%d" cl;
    sc_steps = [ Send req; Recv 0 ];
    sc_expect = Any_status [ 413 ];
  }

(* Garbage: bytes that are not HTTP at all. *)
let garbage prng =
  let n = 1 + Prng.int prng 200 in
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (Prng.int prng 256))
  done;
  (* ensure it cannot accidentally parse as a request line *)
  let raw = "\x00\xff" ^ Bytes.to_string b ^ "\r\n\r\n" in
  {
    sc_name = Printf.sprintf "garbage n=%d" n;
    sc_steps = [ Send raw; Recv 0 ];
    sc_expect = Any_status [ 400 ];
  }

let generators =
  [
    well_formed;
    slow_trickle;
    torn_request;
    stall;
    midresponse_abort;
    churn;
    oversized_headers;
    oversized_body;
    garbage;
  ]

let generate ~seed n =
  let prng = Prng.create seed in
  List.init n (fun i ->
      let g =
        (* guarantee one of each kind before going random, so a small n
           still covers the whole taxonomy *)
        if i < List.length generators then List.nth generators i
        else Prng.pick_list prng generators
      in
      g (Prng.split prng (string_of_int i)))
