(** Seeded fault injection for the binary ingestion pipeline.

    Generates deterministic corruptions of an ELF image (or any byte
    blob): bit flips across the file header, truncations at every
    section boundary, zeroed and deleted sections, corrupted section
    header entries, bogus string-table indices, and uniformly seeded
    random bit flips. The same [seed] and input bytes always produce the
    same mutation corpus, so failures reproduce exactly.

    The module knows just enough of the ELF on-disk layout (the 64-byte
    header and the section header table it points at) to aim structured
    mutations; everything else is layout-agnostic. It never interprets
    the mutated bytes itself — callers feed them to the lenient parsers
    and classify what comes back with {!classify}/{!survey}. *)

type mutation = {
  mut_name : string;  (** stable descriptive id, e.g. ["trunc-1024"] *)
  mut_bytes : string;
}

val flip_bit : string -> byte:int -> bit:int -> string
(** XOR one bit. Out-of-range positions return the input unchanged. *)

val truncate : string -> len:int -> string
(** Keep the first [len] bytes (clamped to the input size). *)

val zero_range : string -> pos:int -> len:int -> string
(** Zero [len] bytes at [pos] (clamped). *)

val section_boundaries : string -> int list
(** Sorted distinct file offsets where an ELF parser changes state:
    the header end, each section's start and end, and the section header
    table's start, entry starts and end. Empty when the input is too
    short to carry an ELF header. *)

val mutations : ?count:int -> seed:int64 -> string -> mutation list
(** The full corpus for one input: all structured mutations, topped up
    with seeded random bit flips until at least [count] (default 500)
    mutations exist. Deterministic in [(seed, input)]. *)

val bytecode_mutations : ?count:int -> seed:int64 -> string -> mutation list
(** Like {!mutations} but aimed at an encoded eBPF instruction stream
    (8-byte insns): per-instruction opcode/register/offset/immediate
    flips, truncations at (and between) instruction boundaries, splices
    and duplications, topped up with seeded random bit flips until at
    least [count] (default 500). Deterministic in [(seed, input)].
    Callers feed the mutants to {!Ds_verify.Verify.verify_stream} and
    assert every rejection classifies. *)

(** {2 Outcome classification} *)

type outcome = Clean | Degraded | Fatal | Crashed of string

val classify : (string -> Ds_util.Diag.t list) -> string -> outcome
(** [classify health bytes] runs a lenient ingestion function returning
    its diagnostics and maps the result onto the worst severity —
    [Crashed] (with the exception text) when the supposedly never-raising
    function raised, which is exactly what the harness asserts against. *)

type tally = {
  n_total : int;
  n_clean : int;  (** the mutation hit don't-care bytes *)
  n_degraded : int;
  n_fatal : int;
  n_crashed : int;
}

val survey :
  (string -> Ds_util.Diag.t list) -> mutation list -> tally * (string * string) list
(** Classify every mutation; the association list names each crashed
    mutation with its exception text (empty on a healthy parser). *)
