open Ds_util

type mutation = { mut_name : string; mut_bytes : string }

(* ----------------------- primitive mutations ------------------------- *)

let flip_bit data ~byte ~bit =
  if byte < 0 || byte >= String.length data || bit < 0 || bit > 7 then data
  else begin
    let b = Bytes.of_string data in
    Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let truncate data ~len =
  let len = max 0 (min len (String.length data)) in
  String.sub data 0 len

let zero_range data ~pos ~len =
  let n = String.length data in
  if pos < 0 || len <= 0 || pos >= n then data
  else begin
    let len = min len (n - pos) in
    let b = Bytes.of_string data in
    Bytes.fill b pos len '\000';
    Bytes.to_string b
  end

let set_bytes data ~pos values =
  let n = String.length data in
  if pos < 0 || pos + List.length values > n then data
  else begin
    let b = Bytes.of_string data in
    List.iteri (fun i v -> Bytes.set b (pos + i) (Char.chr (v land 0xff))) values;
    Bytes.to_string b
  end

let set_u16 data ~pos v = set_bytes data ~pos [ v; v lsr 8 ]
let set_u32 data ~pos v = set_bytes data ~pos [ v; v lsr 8; v lsr 16; v lsr 24 ]

(* ------------------------- ELF layout probing ------------------------ *)

(* Just enough of the 64-bit little-endian layout the repo's writer
   emits: header 64 bytes, e_shoff u64@40, e_shentsize u16@58,
   e_shnum u16@60, e_shstrndx u16@62; each section header entry carries
   sh_name u32@+0, sh_offset u64@+24, sh_size u64@+32. *)

let ehdr_size = 64
let shdr_size = 64

let get_u16 s pos = Char.code s.[pos] lor (Char.code s.[pos + 1] lsl 8)

let get_u64_as_int s pos =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

type shdr = { sh_index : int; sh_pos : int; sh_off : int; sh_size : int }

let shdrs data =
  let n = String.length data in
  if n < ehdr_size then []
  else begin
    let shoff = get_u64_as_int data 40 in
    let shnum = get_u16 data 60 in
    if shoff <= 0 || shnum <= 0 then []
    else
      List.filter_map
        (fun i ->
          let pos = shoff + (i * shdr_size) in
          if pos < 0 || pos + shdr_size > n then None
          else
            Some
              {
                sh_index = i;
                sh_pos = pos;
                sh_off = get_u64_as_int data (pos + 24);
                sh_size = get_u64_as_int data (pos + 32);
              })
        (List.init (min shnum 64) Fun.id)
  end

let section_boundaries data =
  let n = String.length data in
  if n < ehdr_size then []
  else begin
    let shoff = get_u64_as_int data 40 in
    let secs = shdrs data in
    let bounds =
      ehdr_size :: shoff
      :: List.concat_map (fun s -> [ s.sh_pos; s.sh_off; s.sh_off + s.sh_size ]) secs
    in
    List.sort_uniq compare (List.filter (fun b -> b >= 0 && b <= n) bounds)
  end

(* --------------------------- the corpus ------------------------------ *)

let structured data =
  let n = String.length data in
  let secs = shdrs data in
  let name fmt = Printf.ksprintf Fun.id fmt in
  let header_flips =
    List.init (min n ehdr_size) (fun i ->
        { mut_name = name "hdr-flip-%d" i; mut_bytes = flip_bit data ~byte:i ~bit:(i mod 8) })
  in
  let truncations =
    List.filter_map
      (fun b ->
        if b >= n then None
        else Some { mut_name = name "trunc-%d" b; mut_bytes = truncate data ~len:b })
      (section_boundaries data)
  in
  let per_section =
    List.concat_map
      (fun s ->
        [
          {
            mut_name = name "shdr-off-huge-%d" s.sh_index;
            mut_bytes = set_u32 data ~pos:(s.sh_pos + 24) 0xfffffff0;
          }
          (* the offset's high u32 stays zero: a 4 GiB offset, cleanly
             out of bounds without overflowing the reader's int *);
          {
            mut_name = name "shdr-size-huge-%d" s.sh_index;
            mut_bytes = set_u32 data ~pos:(s.sh_pos + 32) 0xfffffff0;
          };
          {
            mut_name = name "shdr-name-bogus-%d" s.sh_index;
            mut_bytes = set_u32 data ~pos:s.sh_pos 0x00fffff0;
          };
          {
            mut_name = name "shdr-zero-%d" s.sh_index;
            mut_bytes = zero_range data ~pos:s.sh_pos ~len:shdr_size;
          };
          {
            mut_name = name "zero-sec-%d" s.sh_index;
            mut_bytes = zero_range data ~pos:s.sh_off ~len:s.sh_size;
          };
        ])
      secs
  in
  let table_level =
    if n < ehdr_size then []
    else begin
      let shnum = get_u16 data 60 in
      [
        { mut_name = "shstrndx-bogus"; mut_bytes = set_u16 data ~pos:62 0xfff0 };
        { mut_name = "shnum-zero"; mut_bytes = set_u16 data ~pos:60 0 };
        { mut_name = "shnum-huge"; mut_bytes = set_u16 data ~pos:60 0xffff };
      ]
      @
      if shnum > 1 then
        [ { mut_name = "shnum-dec"; mut_bytes = set_u16 data ~pos:60 (shnum - 1) } ]
      else []
    end
  in
  header_flips @ truncations @ per_section @ table_level

let mutations ?(count = 500) ~seed data =
  let base = structured data in
  let missing = count - List.length base in
  if missing <= 0 || String.length data = 0 then base
  else begin
    let rng = Prng.of_string (Printf.sprintf "faultgen-%Ld-%d" seed (String.length data)) in
    let random_flips =
      List.init missing (fun k ->
          let byte = Prng.int rng (String.length data) in
          let bit = Prng.int rng 8 in
          {
            mut_name = Printf.sprintf "flip-%d-%d.%d" k byte bit;
            mut_bytes = flip_bit data ~byte ~bit;
          })
    in
    base @ random_flips
  end

(* ----------------------- bytecode mutations -------------------------- *)

(* Seeded corpus over an encoded eBPF instruction stream (8-byte insns:
   opcode, reg nibbles, u16 offset, u32 imm). The structured mutants aim
   every field the verifier judges — opcode, registers, jump offsets,
   immediates — plus stream-shape faults: insn-boundary and ragged
   truncations, splices (rotations at an insn boundary) and single-insn
   duplications. Deterministic in (seed, input), like [mutations]. *)
let bytecode_mutations ?(count = 500) ~seed data =
  let n = String.length data in
  let n_insns = n / 8 in
  let name fmt = Printf.ksprintf Fun.id fmt in
  let per_insn =
    List.concat_map
      (fun i ->
        let base = 8 * i in
        [
          (* opcode: one flipped bit, and a byte no decoder knows *)
          { mut_name = name "op-flip-%d" i; mut_bytes = flip_bit data ~byte:base ~bit:(i mod 8) };
          { mut_name = name "op-bogus-%d" i; mut_bytes = set_bytes data ~pos:base [ 0xff ] };
          (* registers: bump the dst nibble (low) and the src nibble (high) *)
          { mut_name = name "reg-dst-%d" i; mut_bytes = flip_bit data ~byte:(base + 1) ~bit:3 };
          { mut_name = name "reg-src-%d" i; mut_bytes = flip_bit data ~byte:(base + 1) ~bit:7 };
          (* offset: far positive (ctx/jump out of range) and negative *)
          { mut_name = name "off-huge-%d" i; mut_bytes = set_u16 data ~pos:(base + 2) 0x7ff0 };
          { mut_name = name "off-neg-%d" i; mut_bytes = set_u16 data ~pos:(base + 2) 0xfff8 };
          (* immediate: unknown helper ids, giant constants *)
          { mut_name = name "imm-huge-%d" i; mut_bytes = set_u32 data ~pos:(base + 4) 0x7ffffff0 };
        ])
      (List.init (min n_insns 64) Fun.id)
  in
  let truncations =
    List.filter_map
      (fun i -> if i = n_insns then None
        else Some { mut_name = name "trunc-insn-%d" i; mut_bytes = truncate data ~len:(8 * i) })
      (List.init (min n_insns 64) Fun.id)
    @ (if n >= 8 then [ { mut_name = "trunc-ragged"; mut_bytes = truncate data ~len:(n - 3) } ]
       else [])
  in
  let splices =
    if n_insns < 2 then []
    else
      List.concat_map
        (fun k ->
          let cut = 8 * k in
          [
            (* rotation: the tail spliced in front of the head *)
            {
              mut_name = name "splice-%d" k;
              mut_bytes = String.sub data cut (n - cut) ^ String.sub data 0 cut;
            };
            (* duplication: insn k-1 emitted twice *)
            {
              mut_name = name "dup-%d" (k - 1);
              mut_bytes = String.sub data 0 cut ^ String.sub data (cut - 8) (n - cut + 8);
            };
          ])
        (List.init (min (n_insns - 1) 16) (fun k -> k + 1))
  in
  let base = per_insn @ truncations @ splices in
  let missing = count - List.length base in
  if missing <= 0 || n = 0 then base
  else begin
    let rng = Prng.of_string (Printf.sprintf "faultgen-bc-%Ld-%d" seed n) in
    let random_flips =
      List.init missing (fun k ->
          let byte = Prng.int rng n in
          let bit = Prng.int rng 8 in
          {
            mut_name = Printf.sprintf "bc-flip-%d-%d.%d" k byte bit;
            mut_bytes = flip_bit data ~byte ~bit;
          })
    in
    base @ random_flips
  end

(* ---------------------- outcome classification ---------------------- *)

type outcome = Clean | Degraded | Fatal | Crashed of string

let classify health bytes =
  match health bytes with
  | diags -> (
      match Diag.worst diags with
      | Some Diag.Fatal -> Fatal
      | Some Diag.Degraded -> Degraded
      | Some Diag.Warning | None -> Clean)
  | exception e -> Crashed (Printexc.to_string e)

type tally = {
  n_total : int;
  n_clean : int;
  n_degraded : int;
  n_fatal : int;
  n_crashed : int;
}

let survey health muts =
  let tally = ref { n_total = 0; n_clean = 0; n_degraded = 0; n_fatal = 0; n_crashed = 0 } in
  let crashed = ref [] in
  List.iter
    (fun m ->
      let t = !tally in
      let t = { t with n_total = t.n_total + 1 } in
      tally :=
        (match classify health m.mut_bytes with
        | Clean -> { t with n_clean = t.n_clean + 1 }
        | Degraded -> { t with n_degraded = t.n_degraded + 1 }
        | Fatal -> { t with n_fatal = t.n_fatal + 1 }
        | Crashed e ->
            crashed := (m.mut_name, e) :: !crashed;
            { t with n_crashed = t.n_crashed + 1 }))
    muts;
  (!tally, List.rev !crashed)
