open Ds_bpf

type dep =
  | Dep_func of string
  | Dep_struct of string
  | Dep_field of string * string
  | Dep_tracepoint of string
  | Dep_syscall of string

let rank = function
  | Dep_func _ -> 0
  | Dep_struct _ -> 1
  | Dep_field _ -> 2
  | Dep_tracepoint _ -> 3
  | Dep_syscall _ -> 4

let compare_dep a b =
  match compare (rank a) (rank b) with 0 -> compare a b | c -> c

let dep_to_string = function
  | Dep_func f -> "func:" ^ f
  | Dep_struct s -> "struct:" ^ s
  | Dep_field (s, f) -> Printf.sprintf "field:%s::%s" s f
  | Dep_tracepoint t -> "tracepoint:" ^ t
  | Dep_syscall s -> "syscall:" ^ s

let dep_of_string s =
  match Ds_util.Strutil.cut ~on:':' s with
  | None -> if s = "" then None else Some (Dep_func s)
  | Some (kind, name) -> (
      if name = "" then None
      else
        match kind with
        | "func" -> Some (Dep_func name)
        | "struct" -> Some (Dep_struct name)
        | "field" -> (
            match Ds_util.Strutil.find_sub name ~sub:"::" with
            | Some i when i > 0 && i + 2 < String.length name ->
                Some
                  (Dep_field
                     (String.sub name 0 i, String.sub name (i + 2) (String.length name - i - 2)))
            | _ -> None)
        | "tracepoint" -> Some (Dep_tracepoint name)
        | "syscall" -> Some (Dep_syscall name)
        | _ -> None)

(* Expand a resolved access chain into its intermediate struct/field
   dependencies, following links through the object's own BTF. *)
let chain_deps obj root_struct path =
  let env, _ = Ds_btf.Btf.to_env ~ptr_size:8 obj.Obj.o_btf in
  let rec go sname path acc =
    match path with
    | [] -> acc
    | f :: rest -> (
        let acc = Dep_struct sname :: Dep_field (sname, f) :: acc in
        match rest with
        | [] -> acc
        | _ -> (
            match Ds_ctypes.Decl.find_struct env sname with
            | None -> acc
            | Some def -> (
                match
                  List.find_opt (fun (fd : Ds_ctypes.Decl.field) -> fd.fname = f) def.fields
                with
                | None -> acc
                | Some fd -> (
                    match Ds_ctypes.Ctype.strip_quals fd.ftype with
                    | Ds_ctypes.Ctype.Ptr inner | inner -> (
                        match Ds_ctypes.Ctype.strip_quals inner with
                        | Ds_ctypes.Ctype.Struct_ref n | Ds_ctypes.Ctype.Union_ref n ->
                            go n rest acc
                        | _ -> acc)))))
  in
  go root_struct path []

let of_obj obj =
  let deps = ref [] in
  let add d = deps := d :: !deps in
  List.iter
    (fun (p : Obj.prog) ->
      (match Hook.of_section p.Obj.p_section with
      | Some hook -> (
          (match Hook.target_function hook with Some f -> add (Dep_func f) | None -> ());
          (match Hook.target_tracepoint hook with
          | Some tp -> add (Dep_tracepoint tp)
          | None -> ());
          match Hook.target_syscall hook with
          | Some sc -> add (Dep_syscall sc)
          | None -> ())
      | None -> ());
      List.iter (fun kf -> add (Dep_func kf)) p.Obj.p_kfuncs;
      List.iter
        (fun (r : Obj.core_reloc) ->
          match Obj.access_path obj r.Obj.cr_type_id r.Obj.cr_access with
          | Some (root, []) -> add (Dep_struct root)
          | Some (root, path) -> List.iter add (chain_deps obj root path)
          | None -> ())
        p.Obj.p_relocs)
    obj.Obj.o_progs;
  List.sort_uniq compare_dep !deps

type totals = {
  n_funcs : int;
  n_structs : int;
  n_fields : int;
  n_tracepoints : int;
  n_syscalls : int;
}

let totals deps =
  List.fold_left
    (fun t d ->
      match d with
      | Dep_func _ -> { t with n_funcs = t.n_funcs + 1 }
      | Dep_struct _ -> { t with n_structs = t.n_structs + 1 }
      | Dep_field _ -> { t with n_fields = t.n_fields + 1 }
      | Dep_tracepoint _ -> { t with n_tracepoints = t.n_tracepoints + 1 }
      | Dep_syscall _ -> { t with n_syscalls = t.n_syscalls + 1 })
    { n_funcs = 0; n_structs = 0; n_fields = 0; n_tracepoints = 0; n_syscalls = 0 }
    deps
