open Ds_util
open Ds_ksrc
module W = Bytesio.Writer
module R = Bytesio.Reader

let codec_version = 1
let ns = "delta"

type 'e op = Add of 'e | Remove of string | Change of 'e

type t = {
  dl_base_ref : string;
  dl_version : Version.t;
  dl_arch : Config.arch;
  dl_flavor : Config.flavor;
  dl_gcc : int * int;
  dl_health : Diag.t list;
  dl_funcs : Surface.func_entry op list;
  dl_structs : Ds_ctypes.Decl.struct_def op list;
  dl_tracepoints : Surface.tp_entry op list;
  dl_syscalls : string op list;
}

type counts = { dc_adds : int; dc_removes : int; dc_changes : int }

let counts d =
  let tally acc ops =
    List.fold_left
      (fun c -> function
        | Add _ -> { c with dc_adds = c.dc_adds + 1 }
        | Remove _ -> { c with dc_removes = c.dc_removes + 1 }
        | Change _ -> { c with dc_changes = c.dc_changes + 1 })
      acc ops
  in
  let z = { dc_adds = 0; dc_removes = 0; dc_changes = 0 } in
  let c = tally z d.dl_funcs in
  let c = tally c d.dl_structs in
  let c = tally c d.dl_tracepoints in
  tally c d.dl_syscalls

let digest s =
  let h = Ds_store.Store.Hash.create () in
  Ds_store.Store.Hash.string h (Codec.encode_surface s);
  Ds_store.Store.Hash.hex h

(* ------------------------------ diffing ------------------------------ *)

(* merge-join two name-sorted entry lists into an op list (itself emitted
   in ascending name order). Entries are compared structurally: any
   difference at all becomes a [Change] carrying the full new entry, which
   is what makes [apply] reconstruct byte-identical surfaces — diff-level
   "changed" semantics (non-empty change reasons) are recovered in
   [to_diff]. *)
let merge_ops ~name base next =
  let rec go acc bs ns =
    match (bs, ns) with
    | [], [] -> List.rev acc
    | [], n :: ns -> go (Add n :: acc) [] ns
    | b :: bs, [] -> go (Remove (name b) :: acc) bs []
    | b :: bs', n :: ns' ->
        let c = compare (name b) (name n) in
        if c < 0 then go (Remove (name b) :: acc) bs' ns
        else if c > 0 then go (Add n :: acc) bs ns'
        else go (if b = n then acc else Change n :: acc) bs' ns'
  in
  go [] base next

let diff_surfaces ~base (next : Surface.t) =
  {
    dl_base_ref = digest base;
    dl_version = next.Surface.s_version;
    dl_arch = next.Surface.s_arch;
    dl_flavor = next.Surface.s_flavor;
    dl_gcc = next.Surface.s_gcc;
    dl_health = next.Surface.s_health;
    dl_funcs =
      merge_ops
        ~name:(fun (f : Surface.func_entry) -> f.fe_name)
        base.Surface.s_funcs next.Surface.s_funcs;
    dl_structs =
      merge_ops
        ~name:(fun (s : Ds_ctypes.Decl.struct_def) -> s.sname)
        base.Surface.s_structs next.Surface.s_structs;
    dl_tracepoints =
      merge_ops
        ~name:(fun (t : Surface.tp_entry) -> t.te_name)
        base.Surface.s_tracepoints next.Surface.s_tracepoints;
    dl_syscalls = merge_ops ~name:Fun.id base.Surface.s_syscalls next.Surface.s_syscalls;
  }

(* ------------------------------ framing ------------------------------ *)

let w_op w_entry w = function
  | Add e ->
      W.u8 w 0;
      w_entry w e
  | Remove n ->
      W.u8 w 1;
      Codec_base.w_str w n
  | Change e ->
      W.u8 w 2;
      w_entry w e

let r_op r_entry r =
  match R.u8 r with
  | 0 -> Add (r_entry r)
  | 1 -> Remove (Codec_base.r_str r)
  | 2 -> Change (r_entry r)
  | n -> Codec_base.fail "delta op tag %d" n

let encode d =
  let open Codec_base in
  let w = W.create () in
  W.uleb128 w codec_version;
  w_str w d.dl_base_ref;
  w_version w d.dl_version;
  W.u8 w (arch_tag d.dl_arch);
  W.u8 w (flavor_tag d.dl_flavor);
  W.uleb128 w (fst d.dl_gcc);
  W.uleb128 w (snd d.dl_gcc);
  w_list w w_diag d.dl_health;
  w_list w (w_op w_func_entry) d.dl_funcs;
  w_list w (w_op w_struct_def) d.dl_structs;
  w_list w (w_op w_tp_entry) d.dl_tracepoints;
  w_list w (w_op w_str) d.dl_syscalls;
  W.contents w

let decode data =
  let open Codec_base in
  let r = R.of_string data in
  let v = R.uleb128 r in
  if v <> codec_version then fail "delta codec version %d (expected %d)" v codec_version;
  let dl_base_ref = r_str r in
  let dl_version = r_version r in
  let dl_arch = arch_of_tag (R.u8 r) in
  let dl_flavor = flavor_of_tag (R.u8 r) in
  let gcc_major = R.uleb128 r in
  let gcc_minor = R.uleb128 r in
  let dl_health = r_list r r_diag in
  let dl_funcs = r_list r (r_op r_func_entry) in
  let dl_structs = r_list r (r_op r_struct_def) in
  let dl_tracepoints = r_list r (r_op r_tp_entry) in
  let dl_syscalls = r_list r (r_op r_str) in
  expect_eof r;
  {
    dl_base_ref;
    dl_version;
    dl_arch;
    dl_flavor;
    dl_gcc = (gcc_major, gcc_minor);
    dl_health;
    dl_funcs;
    dl_structs;
    dl_tracepoints;
    dl_syscalls;
  }

(* ------------------------------ applying ----------------------------- *)

(* [Surface.v] re-sorts funcs/structs/tracepoints, so those sections can
   be rebuilt as filter + append; syscalls pass through [Surface.v]
   untouched, so their ops are replayed as an ordered merge to land in
   the same (sorted) positions the next surface's own encoding has. *)
let apply_section ~name base ops =
  let dropped = Hashtbl.create 16 in
  let fresh =
    List.filter_map
      (function
        | Add e | Change e -> Some e
        | Remove n ->
            Hashtbl.replace dropped n ();
            None)
      ops
  in
  List.iter (function Change e -> Hashtbl.replace dropped (name e) () | _ -> ()) ops;
  List.filter (fun e -> not (Hashtbl.mem dropped (name e))) base @ fresh

let apply_syscalls base ops =
  let rec go acc base ops =
    match (base, ops) with
    | rest, [] -> List.rev_append acc rest
    | [], Add n :: ops -> go (n :: acc) [] ops
    | [], (Remove n | Change n) :: _ -> Codec_base.fail "syscall op for absent %s" n
    | b :: base', op :: ops' -> (
        match op with
        | Add n when compare n b <= 0 -> go (n :: acc) base ops'
        | Add _ -> go (b :: acc) base' ops
        | Remove n when n = b -> go acc base' ops'
        | Remove n when compare n b < 0 -> Codec_base.fail "syscall op for absent %s" n
        | Remove _ -> go (b :: acc) base' ops
        | Change n -> Codec_base.fail "syscall change op for %s" n)
  in
  go [] base ops

let apply ~base d =
  let base_ref = digest base in
  if d.dl_base_ref <> base_ref then
    Codec_base.fail "delta applied to wrong base (have %s, delta expects %s)" base_ref
      d.dl_base_ref;
  let funcs =
    apply_section
      ~name:(fun (f : Surface.func_entry) -> f.fe_name)
      base.Surface.s_funcs d.dl_funcs
  in
  let structs =
    apply_section
      ~name:(fun (s : Ds_ctypes.Decl.struct_def) -> s.sname)
      base.Surface.s_structs d.dl_structs
  in
  let tracepoints =
    apply_section
      ~name:(fun (t : Surface.tp_entry) -> t.te_name)
      base.Surface.s_tracepoints d.dl_tracepoints
  in
  let syscalls = apply_syscalls base.Surface.s_syscalls d.dl_syscalls in
  Surface.with_health d.dl_health
    (Surface.v ~version:d.dl_version ~arch:d.dl_arch ~flavor:d.dl_flavor ~gcc:d.dl_gcc ~funcs
       ~structs ~tracepoints ~syscalls)

(* ----------------------------- derived views ------------------------- *)

let section_diff ~name ~changes base ops =
  let added = List.filter_map (function Add e -> Some (name e) | _ -> None) ops in
  let removed = List.filter_map (function Remove n -> Some n | _ -> None) ops in
  let changed =
    List.filter_map
      (function
        | Change e -> (
            match changes (name e) e with [] -> None | cs -> Some (name e, cs))
        | _ -> None)
      ops
  in
  (* every base construct not removed is present on both sides; [Change]
     ops count as common, exactly as [Diff.compare_surfaces] counts them *)
  let d_common = List.length base - List.length removed in
  { Diff.d_common; d_added = added; d_removed = removed; d_changed = changed }

let to_diff ?(mode = Diff.Across_versions) ~base d =
  let df_funcs =
    section_diff
      ~name:(fun (f : Surface.func_entry) -> f.fe_name)
      ~changes:(fun n e ->
        match Surface.find_func base n with
        | Some old ->
            Diff.func_changes (Surface.representative_proto old)
              (Surface.representative_proto e)
        | None -> [])
      base.Surface.s_funcs d.dl_funcs
  in
  let df_structs =
    section_diff
      ~name:(fun (s : Ds_ctypes.Decl.struct_def) -> s.sname)
      ~changes:(fun n e ->
        match Surface.find_struct base n with
        | Some old -> Diff.field_changes mode old e
        | None -> [])
      base.Surface.s_structs d.dl_structs
  in
  let df_tracepoints =
    section_diff
      ~name:(fun (t : Surface.tp_entry) -> t.te_name)
      ~changes:(fun n e ->
        match Surface.find_tracepoint base n with
        | Some old -> Diff.tp_changes mode old e
        | None -> [])
      base.Surface.s_tracepoints d.dl_tracepoints
  in
  let df_syscalls =
    section_diff ~name:Fun.id ~changes:(fun _ _ -> []) base.Surface.s_syscalls d.dl_syscalls
  in
  { Diff.df_funcs; df_structs; df_tracepoints; df_syscalls }

let changed_deps d =
  let deps = ref [] in
  let push dep = deps := dep :: !deps in
  let scan f name ops =
    List.iter
      (function Remove n -> push (f n) | Change e -> push (f (name e)) | Add _ -> ())
      ops
  in
  scan (fun n -> Depset.Dep_func n) (fun (f : Surface.func_entry) -> f.fe_name) d.dl_funcs;
  scan
    (fun n -> Depset.Dep_struct n)
    (fun (s : Ds_ctypes.Decl.struct_def) -> s.sname)
    d.dl_structs;
  scan
    (fun n -> Depset.Dep_tracepoint n)
    (fun (t : Surface.tp_entry) -> t.te_name)
    d.dl_tracepoints;
  scan (fun n -> Depset.Dep_syscall n) Fun.id d.dl_syscalls;
  List.sort_uniq Depset.compare_dep !deps
