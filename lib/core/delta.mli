(** Delta encoding of dependency surfaces (the store's "delta" tier).

    A release's surface is stored as a base-reference plus per-symbol
    add/remove/change ops against its predecessor, so warm extraction
    and diffing of release N+1 cost O(changed symbols) instead of
    O(image). The encoding is {!Codec}-framed and versioned; applying a
    delta to its base reconstructs a surface whose {!Codec.encode_surface}
    bytes are identical to the non-delta encoding (property-tested). *)

open Ds_ksrc

val codec_version : int
(** Schema version of the delta wire format; participates in the store
    keys of the "delta" namespace alongside {!Codec.version}. *)

val ns : string
(** The store namespace for delta entries, ["delta"]. *)

(** One per-symbol operation against the base surface. [`Add] and
    [`Change] carry the full replacement entry (encoded with the same
    entry codecs as {!Codec.encode_surface}, which is what makes the
    reconstruction byte-identical); [`Remove] carries only the name. *)
type 'e op = Add of 'e | Remove of string | Change of 'e

type t = {
  dl_base_ref : string;  (** {!digest} of the base surface's canonical encoding *)
  dl_version : Version.t;  (** header of the {e next} surface, stored whole *)
  dl_arch : Config.arch;
  dl_flavor : Config.flavor;
  dl_gcc : int * int;
  dl_health : Ds_util.Diag.t list;
  dl_funcs : Surface.func_entry op list;
  dl_structs : Ds_ctypes.Decl.struct_def op list;
  dl_tracepoints : Surface.tp_entry op list;
  dl_syscalls : string op list;  (** add/remove only; the name is the payload *)
}

type counts = { dc_adds : int; dc_removes : int; dc_changes : int }

val counts : t -> counts
(** Total op counts across all four sections — the O(changed) bound the
    bench gates on. *)

val digest : Surface.t -> string
(** Content digest of [Codec.encode_surface s]; the base-reference a
    delta is checked against. O(surface) — callers on the warm path
    should memoize per base. *)

val diff_surfaces : base:Surface.t -> Surface.t -> t
(** Compute the op list turning [base] into the given next surface, by
    merge-joining the sorted per-section name lists. O(base + next). *)

val encode : t -> string
val decode : string -> t
(** Raises {!Codec.Decode_error} on malformed payloads, like the other
    store codecs. *)

val apply : base:Surface.t -> t -> Surface.t
(** Reconstruct the next surface. Verifies the delta's base-reference
    against [digest base] and raises {!Codec.Decode_error} on mismatch
    (a delta applied to the wrong base is a corrupt store entry).
    [Codec.encode_surface (apply ~base d)] is byte-identical to the
    non-delta encoding of the surface [d] was computed from. *)

val to_diff : ?mode:Diff.mode -> base:Surface.t -> t -> Diff.t
(** Derive the release diff straight from the ops — O(changed symbols),
    no second surface in memory: change reasons come from
    {!Diff.func_changes}/{!Diff.field_changes}/{!Diff.tp_changes}
    against the base entries, [d_common] from the base population. *)

val changed_deps : t -> Depset.dep list
(** The removed/changed constructs as {!Depset.dep} nodes (sorted,
    deduplicated) — the seed set intersected with subscriber depsets via
    the dependency graph's reverse closure. Additions are not included:
    a registered dependency cannot break by a construct appearing. *)
