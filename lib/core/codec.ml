(* Public codec = the base (surface/diff) codec plus the report-matrix
   codec. Split into two compilation units because [Dataset] needs the
   surface codec while [Report] needs [Dataset]: keeping the matrix part
   here (and only here) breaks that cycle. *)

include Codec_base

(* ----------------------------- matrices ------------------------------ *)

let w_dep w (d : Depset.dep) =
  match d with
  | Dep_func s ->
      W.u8 w 0;
      w_str w s
  | Dep_struct s ->
      W.u8 w 1;
      w_str w s
  | Dep_field (s, f) ->
      W.u8 w 2;
      w_str w s;
      w_str w f
  | Dep_tracepoint s ->
      W.u8 w 3;
      w_str w s
  | Dep_syscall s ->
      W.u8 w 4;
      w_str w s

let r_dep r : Depset.dep =
  match R.u8 r with
  | 0 -> Dep_func (r_str r)
  | 1 -> Dep_struct (r_str r)
  | 2 ->
      let s = r_str r in
      let f = r_str r in
      Dep_field (s, f)
  | 3 -> Dep_tracepoint (r_str r)
  | 4 -> Dep_syscall (r_str r)
  | n -> fail "dep tag %d" n

let w_status w (s : Report.status) =
  match s with
  | St_ok -> W.u8 w 0
  | St_absent -> W.u8 w 1
  | St_changed reasons ->
      W.u8 w 2;
      w_list w w_str reasons
  | St_full_inline -> W.u8 w 3
  | St_selective_inline -> W.u8 w 4
  | St_transformed -> W.u8 w 5
  | St_duplicated -> W.u8 w 6
  | St_collision -> W.u8 w 7

let r_status r : Report.status =
  match R.u8 r with
  | 0 -> St_ok
  | 1 -> St_absent
  | 2 -> St_changed (r_list r r_str)
  | 3 -> St_full_inline
  | 4 -> St_selective_inline
  | 5 -> St_transformed
  | 6 -> St_duplicated
  | 7 -> St_collision
  | n -> fail "status tag %d" n

let w_image = w_pair w_version w_config
let r_image = r_pair r_version r_config

let encode_matrix (m : Report.matrix) =
  let w = W.create () in
  w_str w m.m_obj_name;
  w_image w m.m_baseline;
  w_list w
    (fun w (row : Report.dep_row) ->
      w_dep w row.r_dep;
      w_list w
        (fun w (c : Report.cell) ->
          w_image w c.c_image;
          w_list w w_status c.c_statuses;
          w_bool w c.c_degraded)
        row.r_cells)
    m.m_rows;
  W.contents w

(* Primitive helpers re-exported for sibling codecs (ds_graph) that
   frame their own payloads but must stay wire-compatible with this
   codec's conventions (and share the [Decode_error] discipline). *)
module Prim = struct
  let w_str = w_str
  let r_str = r_str
  let w_bool = w_bool
  let r_bool = r_bool
  let w_list = w_list
  let r_list = r_list
  let w_opt = w_opt
  let r_opt = r_opt
  let w_version = w_version
  let r_version = r_version
  let w_config = w_config
  let r_config = r_config
  let w_dep = w_dep
  let r_dep = r_dep
  let expect_eof = expect_eof
  let fail = fail
end

let decode_matrix data : Report.matrix =
  let r = R.of_string data in
  let m_obj_name = r_str r in
  let m_baseline = r_image r in
  let m_rows =
    r_list r (fun r ->
        let r_dep_v = r_dep r in
        let r_cells =
          r_list r (fun r ->
              let c_image = r_image r in
              let c_statuses = r_list r r_status in
              let c_degraded = r_bool r in
              ({ c_image; c_statuses; c_degraded } : Report.cell))
        in
        ({ r_dep = r_dep_v; r_cells } : Report.dep_row))
  in
  expect_eof r;
  { m_obj_name; m_baseline; m_rows }
