open Ds_ksrc
open Ds_ctypes
open Ds_elf
module Diag = Ds_util.Diag
module Smap = Map.Make (String)

type decl_instance = {
  di_tu : string;
  di_file : string;
  di_line : int;
  di_proto : Ctype.proto;
  di_external : bool;
  di_declared_inline : bool;
  di_low_pc : int64 option;
}

type inline_site = { is_caller : string; is_tu : string; is_pc : int64 }

type func_entry = {
  fe_name : string;
  fe_decls : decl_instance list;
  fe_symbols : Elf.symbol list;
  fe_suffixed : Elf.symbol list;
  fe_inline_sites : inline_site list;
  fe_callers : string list;
}

type tp_entry = {
  te_name : string;
  te_class : string;
  te_event_struct : Decl.struct_def option;
  te_func : Decl.func_decl option;
}

type index = {
  ix_funcs : func_entry Smap.t;
  ix_structs : Decl.struct_def Smap.t;
  ix_tracepoints : tp_entry Smap.t;
  ix_syscalls : (string, unit) Hashtbl.t;
}

type t = {
  s_version : Version.t;
  s_arch : Config.arch;
  s_flavor : Config.flavor;
  s_gcc : int * int;
  s_funcs : func_entry list;
  s_structs : Decl.struct_def list;
  s_tracepoints : tp_entry list;
  s_syscalls : string list;
  s_compat_traceable : bool;
  s_health : Diag.t list;
  s_index : index;
}

let is_tracing_func name = String.starts_with ~prefix:"trace_event_raw_event_" name
let is_event_struct name =
  String.starts_with ~prefix:"trace_event_raw_" name || name = "trace_entry"

(* Shared back half of extraction: everything after the DWARF compile
   units, the BTF type environment and the struct list have been
   obtained (strictly or leniently). *)
let assemble (k : Ds_bpf.Vmlinux.t) ~cus ~env ~btf_funcs ~structs ~health =
  let img = k.Ds_bpf.Vmlinux.v_img in
  let decls : (string, decl_instance list ref) Hashtbl.t = Hashtbl.create 1024 in
  let inline_sites : (string, inline_site list ref) Hashtbl.t = Hashtbl.create 256 in
  let callers : (string, string list ref) Hashtbl.t = Hashtbl.create 256 in
  let push tbl key v =
    let cell =
      match Hashtbl.find_opt tbl key with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add tbl key c;
          c
    in
    cell := v :: !cell
  in
  List.iter
    (fun cu ->
      List.iter
        (fun (sp : Ds_dwarf.Info.subprogram) ->
          if not (is_tracing_func sp.sp_name) then begin
            push decls sp.sp_name
              {
                di_tu = cu.Ds_dwarf.Info.cu_name;
                di_file = sp.sp_file;
                di_line = sp.sp_line;
                di_proto = sp.sp_proto;
                di_external = sp.sp_external;
                di_declared_inline = sp.sp_declared_inline;
                di_low_pc = sp.sp_low_pc;
              };
            List.iter
              (fun (ic : Ds_dwarf.Info.inlined_call) ->
                push inline_sites ic.ic_callee
                  {
                    is_caller = sp.sp_name;
                    is_tu = cu.Ds_dwarf.Info.cu_name;
                    is_pc = ic.ic_pc;
                  })
              sp.sp_inlined;
            List.iter (fun callee -> push callers callee sp.sp_name) sp.sp_calls
          end)
        cu.Ds_dwarf.Info.cu_subprograms)
    cus;
  (* Symbol table: text symbols indexed by base name (exact and suffixed). *)
  let exact : (string, Elf.symbol list ref) Hashtbl.t = Hashtbl.create 1024 in
  let suffixed : (string, Elf.symbol list ref) Hashtbl.t = Hashtbl.create 128 in
  List.iter
    (fun (sym : Elf.symbol) ->
      if sym.Elf.sym_section = ".text" then begin
        match String.index_opt sym.Elf.sym_name '.' with
        | None -> push exact sym.Elf.sym_name sym
        | Some i -> push suffixed (String.sub sym.Elf.sym_name 0 i) sym
      end)
    img.Elf.symbols;
  let func_names =
    let tbl = Hashtbl.create 1024 in
    Hashtbl.iter (fun name _ -> Hashtbl.replace tbl name ()) decls;
    Hashtbl.iter (fun name _ -> Hashtbl.replace tbl name ()) inline_sites;
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
  in
  let funcs =
    List.filter_map
      (fun name ->
        let get tbl = match Hashtbl.find_opt tbl name with Some c -> List.rev !c | None -> [] in
        let fe_decls = get decls in
        if fe_decls = [] then None
        else
          Some
            {
              fe_name = name;
              fe_decls;
              fe_symbols = get exact;
              fe_suffixed = get suffixed;
              fe_inline_sites = get inline_sites;
              fe_callers = List.sort_uniq compare (get callers);
            })
      func_names
  in
  let btf_func_map =
    List.fold_left
      (fun m (f : Decl.func_decl) -> Smap.add f.fname f m)
      Smap.empty btf_funcs
  in
  let tracepoints =
    List.map
      (fun (tp : Ds_bpf.Vmlinux.tracepoint) ->
        {
          te_name = tp.Ds_bpf.Vmlinux.vtp_event;
          te_class = tp.Ds_bpf.Vmlinux.vtp_class;
          te_event_struct =
            Decl.find_struct env ("trace_event_raw_" ^ tp.Ds_bpf.Vmlinux.vtp_class);
          te_func =
            Option.bind tp.Ds_bpf.Vmlinux.vtp_func (fun f -> Smap.find_opt f btf_func_map);
        })
      k.Ds_bpf.Vmlinux.v_tracepoints
  in
  let tracepoints =
    List.sort (fun a b -> compare a.te_name b.te_name) tracepoints
  in
  let index =
    {
      ix_funcs = List.fold_left (fun m f -> Smap.add f.fe_name f m) Smap.empty funcs;
      ix_structs =
        List.fold_left (fun m (s : Decl.struct_def) -> Smap.add s.sname s m) Smap.empty structs;
      ix_tracepoints =
        List.fold_left (fun m tp -> Smap.add tp.te_name tp m) Smap.empty tracepoints;
      ix_syscalls =
        (let tbl = Hashtbl.create 64 in
         List.iter (fun s -> Hashtbl.replace tbl s ()) k.Ds_bpf.Vmlinux.v_syscalls;
         tbl);
    }
  in
  {
    s_version = k.Ds_bpf.Vmlinux.v_version;
    s_arch = k.Ds_bpf.Vmlinux.v_arch;
    s_flavor = k.Ds_bpf.Vmlinux.v_flavor;
    s_gcc = k.Ds_bpf.Vmlinux.v_gcc;
    s_funcs = funcs;
    s_structs = structs;
    s_tracepoints = tracepoints;
    s_syscalls = k.Ds_bpf.Vmlinux.v_syscalls;
    s_compat_traceable =
      Ds_ksrc.Construct.compat_syscall_traceable k.Ds_bpf.Vmlinux.v_arch;
    s_health = health;
    s_index = index;
  }

let of_vmlinux (k : Ds_bpf.Vmlinux.t) =
  let img = k.Ds_bpf.Vmlinux.v_img in
  (* DWARF: function declarations, inline sites, call sites. *)
  let info =
    match Elf.find_section img ".debug_info" with
    | Some s -> s.Elf.sec_data
    | None -> raise (Ds_bpf.Vmlinux.Bad_vmlinux "missing .debug_info")
  in
  let abbrev =
    match Elf.find_section img ".debug_abbrev" with
    | Some s -> s.Elf.sec_data
    | None -> raise (Ds_bpf.Vmlinux.Bad_vmlinux "missing .debug_abbrev")
  in
  let cus = Diag.ok (Ds_dwarf.Info.decode ~info ~abbrev ()) in
  (* Structs from BTF (event structs handled with tracepoints). *)
  let env, btf_funcs =
    Ds_btf.Btf.to_env ~ptr_size:(Config.ptr_size k.Ds_bpf.Vmlinux.v_arch) k.Ds_bpf.Vmlinux.v_btf
  in
  let structs =
    List.filter (fun (s : Decl.struct_def) -> not (is_event_struct s.sname)) (Decl.structs env)
  in
  assemble k ~cus ~env ~btf_funcs ~structs ~health:[]

let of_vmlinux_lenient ?(health = []) (k : Ds_bpf.Vmlinux.t) =
  let img = k.Ds_bpf.Vmlinux.v_img in
  let sdiag ?context msg = Diag.v ?context Diag.Degraded ~component:"surface" msg in
  let cus, dwarf_diags =
    match (Elf.find_section img ".debug_info", Elf.find_section img ".debug_abbrev") with
    | Some i, Some a ->
        let o = Ds_dwarf.Info.decode ~mode:`Lenient ~info:i.Elf.sec_data ~abbrev:a.Elf.sec_data () in
        (Diag.ok o, Diag.diags o)
    | None, _ -> ([], [ sdiag "missing .debug_info; function surface unavailable" ])
    | _, None -> ([], [ sdiag "missing .debug_abbrev; function surface unavailable" ])
  in
  let env, btf_funcs, btf_diags =
    Ds_btf.Btf.to_env_lenient
      ~ptr_size:(Config.ptr_size k.Ds_bpf.Vmlinux.v_arch)
      k.Ds_bpf.Vmlinux.v_btf
  in
  let structs_btf =
    List.filter (fun (s : Decl.struct_def) -> not (is_event_struct s.sname)) (Decl.structs env)
  in
  (* With a dead .BTF, fall back to the struct definitions DWARF carries
     per compile unit: dedup by name, same event-struct exclusion. *)
  let structs, fallback_diags =
    if structs_btf <> [] || cus = [] then (structs_btf, [])
    else begin
      let seen = Hashtbl.create 256 in
      let from_dwarf =
        List.concat_map
          (fun cu ->
            List.filter
              (fun (s : Decl.struct_def) ->
                if is_event_struct s.sname || Hashtbl.mem seen s.sname then false
                else begin
                  Hashtbl.replace seen s.sname ();
                  true
                end)
              cu.Ds_dwarf.Info.cu_structs)
          cus
      in
      if from_dwarf = [] then ([], [])
      else
        ( List.sort (fun (a : Decl.struct_def) b -> compare a.sname b.sname) from_dwarf,
          [ sdiag "no structs in BTF; struct surface recovered from DWARF" ] )
    end
  in
  assemble k ~cus ~env ~btf_funcs ~structs
    ~health:(health @ dwarf_diags @ btf_diags @ fallback_diags)

let v ~version ~arch ~flavor ~gcc ~funcs ~structs ~tracepoints ~syscalls =
  let funcs = List.sort (fun a b -> compare a.fe_name b.fe_name) funcs in
  let structs = List.sort (fun (a : Decl.struct_def) b -> compare a.sname b.sname) structs in
  let tracepoints = List.sort (fun a b -> compare a.te_name b.te_name) tracepoints in
  let index =
    {
      ix_funcs = List.fold_left (fun m f -> Smap.add f.fe_name f m) Smap.empty funcs;
      ix_structs =
        List.fold_left (fun m (st : Decl.struct_def) -> Smap.add st.sname st m) Smap.empty structs;
      ix_tracepoints =
        List.fold_left (fun m tp -> Smap.add tp.te_name tp m) Smap.empty tracepoints;
      ix_syscalls =
        (let tbl = Hashtbl.create 64 in
         List.iter (fun sc -> Hashtbl.replace tbl sc ()) syscalls;
         tbl);
    }
  in
  {
    s_version = version;
    s_arch = arch;
    s_flavor = flavor;
    s_gcc = gcc;
    s_funcs = funcs;
    s_structs = structs;
    s_tracepoints = tracepoints;
    s_syscalls = syscalls;
    s_compat_traceable = Ds_ksrc.Construct.compat_syscall_traceable arch;
    s_health = [];
    s_index = index;
  }

let with_health health t = { t with s_health = health }

let of_image img = of_vmlinux (Ds_bpf.Vmlinux.load img)

(* Surface for an image nothing could be extracted from: empty lists,
   placeholder identity, the diagnostics telling the story. *)
let stub ~health =
  with_health health
    (v ~version:(Version.v 0 0) ~arch:Config.X86 ~flavor:Config.Generic ~gcc:(0, 0) ~funcs:[]
       ~structs:[] ~tracepoints:[] ~syscalls:[])

let extract_lenient_impl data =
  let o = Elf.read ~mode:`Lenient data in
  let img = Diag.ok o and r_diags = Diag.diags o in
  if Diag.worst r_diags = Some Diag.Fatal then stub ~health:r_diags
  else begin
    let { Ds_bpf.Vmlinux.k_kernel; k_diags } = Ds_bpf.Vmlinux.load_lenient img in
    let health = r_diags @ k_diags in
    if Diag.worst k_diags = Some Diag.Fatal then stub ~health
    else of_vmlinux_lenient ~health k_kernel
  end

let extract ?(mode = `Strict) data =
  Ds_trace.Trace.span ~name:"surface.extract"
    ~attrs:[ ("bytes", string_of_int (String.length data)) ]
    (fun () ->
      match mode with
      | `Strict -> Diag.outcome (of_image (Diag.ok (Elf.read data)))
      | `Lenient ->
          let t = extract_lenient_impl data in
          Diag.outcome ~diags:t.s_health t)

let extract_lenient data = Diag.ok (extract ~mode:`Lenient data)

let health t = t.s_health
let degraded t = Diag.is_degraded t.s_health

let config t = Config.{ arch = t.s_arch; flavor = t.s_flavor }

let tag t =
  Printf.sprintf "%s/%s/%s"
    (Version.to_string t.s_version)
    (Config.arch_to_string t.s_arch)
    (Config.flavor_to_string t.s_flavor)

let find_func t name = Smap.find_opt name t.s_index.ix_funcs
let find_struct t name = Smap.find_opt name t.s_index.ix_structs

let find_field t sname fname =
  match find_struct t sname with
  | None -> None
  | Some s -> List.find_opt (fun (f : Decl.field) -> f.fname = fname) s.Decl.fields

let find_tracepoint t name = Smap.find_opt name t.s_index.ix_tracepoints
let has_syscall t name = Hashtbl.mem t.s_index.ix_syscalls name

let representative_proto fe =
  match List.find_opt (fun d -> d.di_external) fe.fe_decls with
  | Some d -> d.di_proto
  | None -> (List.hd fe.fe_decls).di_proto

let counts t =
  ( List.length t.s_funcs,
    List.length t.s_structs,
    List.length t.s_tracepoints,
    List.length t.s_syscalls )
