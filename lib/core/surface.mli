(** The dependency surface of one kernel image (paper §2.3): every
    construct an eBPF program can depend on, extracted from the image's
    binary artifacts only — DWARF debug info, the symbol table, BTF, and
    raw data sections. Nothing here looks at the synthetic "source":
    DepSurf works on compiled kernels, exactly as in the paper. *)

open Ds_ksrc
open Ds_ctypes

type decl_instance = {
  di_tu : string;  (** compile unit the declaration came from *)
  di_file : string;  (** declared file (header for header-defined) *)
  di_line : int;
  di_proto : Ctype.proto;
  di_external : bool;
  di_declared_inline : bool;
  di_low_pc : int64 option;
}

type inline_site = { is_caller : string; is_tu : string; is_pc : int64 }

type func_entry = {
  fe_name : string;
  fe_decls : decl_instance list;
  fe_symbols : Ds_elf.Elf.symbol list;  (** exact-name text symbols *)
  fe_suffixed : Ds_elf.Elf.symbol list;  (** ["name.isra.0"]-style symbols *)
  fe_inline_sites : inline_site list;  (** call sites where the body was
                                           copied into the caller *)
  fe_callers : string list;  (** direct (non-inlined) callers *)
}

type tp_entry = {
  te_name : string;
  te_class : string;
  te_event_struct : Decl.struct_def option;  (** from BTF *)
  te_func : Decl.func_decl option;  (** tracing-function prototype *)
}

type index
(** Precomputed name→entry maps; lookups below are logarithmic. *)

type t = {
  s_version : Version.t;
  s_arch : Config.arch;
  s_flavor : Config.flavor;
  s_gcc : int * int;
  s_funcs : func_entry list;  (** sorted by name *)
  s_structs : Decl.struct_def list;  (** sorted; event structs excluded *)
  s_tracepoints : tp_entry list;
  s_syscalls : string list;
  s_compat_traceable : bool;
      (** whether 32-bit compat syscalls can be traced on this arch *)
  s_health : Ds_util.Diag.t list;
      (** ingestion diagnostics: empty for a cleanly-parsed image,
          otherwise what was lost during lenient extraction *)
  s_index : index;
}

val v :
  version:Version.t ->
  arch:Config.arch ->
  flavor:Config.flavor ->
  gcc:int * int ->
  funcs:func_entry list ->
  structs:Decl.struct_def list ->
  tracepoints:tp_entry list ->
  syscalls:string list ->
  t
(** Assemble a surface from parts (building the index); used by the
    dataset-JSON importer. Lists are sorted by name; health is empty
    (use {!with_health}). *)

val with_health : Ds_util.Diag.t list -> t -> t

val extract : ?mode:Ds_util.Diag.mode -> string -> t Ds_util.Diag.outcome
(** Unified entrypoint: full extraction straight from the raw image
    bytes. [`Strict] (the default) raises the parsers' typed exceptions
    ([Bad_elf], [Bad_vmlinux], ...) on the first problem and returns
    empty [diags]. [`Lenient] never raises: whatever the four parsers
    could not recover is described in [diags] (mirrored in the
    surface's [s_health]); a hopeless input (not an ELF, or a BPF
    object) yields an empty surface whose health carries a [Fatal]
    diagnostic. *)

val extract_lenient : string -> t
[@@ocaml.deprecated "use Surface.extract ~mode:`Lenient"]
(** @deprecated Thin wrapper over [extract ~mode:`Lenient]. *)

val of_image : Ds_elf.Elf.t -> t
(** Strict extraction from an already-parsed image (the historical
    [extract]). *)

val of_vmlinux : Ds_bpf.Vmlinux.t -> t
(** Reuse an already-loaded kernel view (avoids re-decoding BTF and the
    data sections). *)

val of_vmlinux_lenient : ?health:Ds_util.Diag.t list -> Ds_bpf.Vmlinux.t -> t
(** Lenient counterpart of {!of_vmlinux}: missing DWARF empties the
    function surface, a dead BTF falls back to DWARF struct definitions.
    [health] prepends diagnostics already collected upstream. *)

val health : t -> Ds_util.Diag.t list
val degraded : t -> bool
(** True when any health diagnostic is [Degraded] or [Fatal]. *)

val config : t -> Config.t
val tag : t -> string

val find_func : t -> string -> func_entry option
val find_struct : t -> string -> Decl.struct_def option
val find_field : t -> string -> string -> Decl.field option
val find_tracepoint : t -> string -> tp_entry option
val has_syscall : t -> string -> bool

val representative_proto : func_entry -> Ctype.proto
(** The declaration used for cross-image comparison (the external decl
    when one exists, else the first). *)

val counts : t -> int * int * int * int
(** (functions, structs, tracepoints, syscalls). *)
