open Ds_util

let version = 1

let envelope ?(health = "clean") ?(diagnostics = []) data =
  Json.Obj
    [
      ("v", Json.Int version);
      ("health", Json.String health);
      ("data", data);
      ("diagnostics", Json.List diagnostics);
    ]

let of_diags ~data diags =
  let health =
    match Diag.worst diags with
    | None | Some Diag.Warning -> "clean"
    | Some Diag.Degraded -> "degraded"
    | Some Diag.Fatal -> "fatal"
  in
  envelope ~health
    ~diagnostics:(List.map (fun d -> Json.String (Diag.to_string d)) diags)
    data

let error ~status msg =
  envelope ~health:"fatal"
    ~diagnostics:[ Json.String msg ]
    (Json.Obj [ ("error", Json.String msg); ("status", Json.Int status) ])

let data j = match Json.member "data" j with Some d -> d | None -> j
