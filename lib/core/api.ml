open Ds_util

let version = 1

let envelope ?(health = "clean") ?(diagnostics = []) data =
  Json.Obj
    [
      ("v", Json.Int version);
      ("health", Json.String health);
      ("data", data);
      ("diagnostics", Json.List diagnostics);
    ]

let of_diags ~data diags =
  let health =
    match Diag.worst diags with
    | None | Some Diag.Warning -> "clean"
    | Some Diag.Degraded -> "degraded"
    | Some Diag.Fatal -> "fatal"
  in
  envelope ~health
    ~diagnostics:(List.map (fun d -> Json.String (Diag.to_string d)) diags)
    data

let error_envelope ~status ?(diagnostics = []) msg =
  envelope ~health:"fatal"
    ~diagnostics:(List.map (fun s -> Json.String s) (msg :: diagnostics))
    (Json.Obj [ ("error", Json.String msg); ("status", Json.Int status) ])

let error ~status msg = error_envelope ~status msg

let data j = match Json.member "data" j with Some d -> d | None -> j

(* --------------------------- mutation envelope ----------------------- *)

type mutation = { mu_params : (string * string) list; mu_body : string; mu_enveloped : bool }

let bare body = { mu_params = []; mu_body = body; mu_enveloped = false }

(* A bare body is whatever the endpoint natively eats (raw BPF object
   bytes, a plain JSON document). The envelope spelling is recognised
   conservatively: a JSON object that carries a "v" member. Anything
   else passes through untouched, which is what keeps pre-envelope
   clients working byte-for-byte. *)
let looks_enveloped body =
  let n = String.length body in
  let rec first i = if i < n then match body.[i] with ' ' | '\t' | '\r' | '\n' -> first (i + 1) | c -> Some c else None in
  match first 0 with
  | Some '{' -> (
      match Json.of_string body with
      | exception _ -> None
      | j -> ( match Json.member "v" j with Some _ -> Some j | None -> None))
  | _ -> None

let parse_mutation body =
  match looks_enveloped body with
  | None -> Ok (bare body)
  | Some j ->
      let problems = ref [] in
      let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
      (match Json.member "v" j with
      | Some (Json.Int v) when v = version -> ()
      | Some (Json.Int v) -> problem "unsupported envelope version %d (this server speaks v%d)" v version
      | Some _ -> problem "envelope member \"v\" must be an integer"
      | None -> ());
      (match j with
      | Json.Obj members ->
          List.iter
            (fun (k, _) ->
              match k with
              | "v" | "params" | "body" -> ()
              | k -> problem "unknown envelope member %S (expected v, params, body)" k)
            members
      | _ -> ());
      let mu_params =
        match Json.member "params" j with
        | None | Some Json.Null -> []
        | Some (Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) ->
                match v with
                | Json.String s -> Some (k, s)
                | Json.Int n -> Some (k, string_of_int n)
                | Json.Bool b -> Some (k, if b then "1" else "0")
                | _ ->
                    problem "envelope param %S must be a string, integer or bool" k;
                    None)
              kvs
        | Some _ ->
            problem "envelope member \"params\" must be an object";
            []
      in
      let mu_body =
        match Json.member "body" j with
        | None | Some Json.Null -> ""
        | Some (Json.String b64) -> (
            match B64.decode b64 with
            | Some raw -> raw
            | None ->
                problem "envelope member \"body\" is not valid base64";
                "")
        | Some (Json.Obj _ as inline) | Some (Json.List _ as inline) ->
            (* inline JSON bodies avoid double-encoding for JSON endpoints *)
            Json.to_string inline
        | Some _ ->
            problem "envelope member \"body\" must be a base64 string or inline JSON";
            ""
      in
      if !problems = [] then Ok { mu_params; mu_body; mu_enveloped = true }
      else Error (List.rev !problems)
