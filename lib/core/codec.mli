(** Compact binary serialization of the pipeline's cacheable artifacts —
    surfaces, diff fan-outs and report matrices — for the {!Ds_store}
    persistent tier. Unlike {!Export} (the human-readable dataset JSON of
    the paper's artifact), this format is private to the cache: dense,
    versioned, and free to change — bumping {!version} silently invalidates
    every old entry because the version participates in the store keys. *)

open Ds_ksrc

val version : int
(** Schema version of this codec; part of every cache key. *)

exception Decode_error of string
(** Raised on an unknown tag or malformed payload ({!Ds_util.Bytesio}'s
    [Truncated] may also escape); the store treats any decode exception as
    a corrupt entry and recomputes. *)

val encode_surface : Surface.t -> string
val decode_surface : string -> Surface.t
(** Roundtrips through {!Surface.v}, which rebuilds the lookup index. *)

val encode_diff : Diff.t -> string
val decode_diff : string -> Diff.t

val encode_version_diffs : ((Version.t * Version.t) * Diff.t) list -> string
val decode_version_diffs : string -> ((Version.t * Version.t) * Diff.t) list
(** The [lts_diffs]/[release_diffs] fan-outs of {!Pipeline.cached}. *)

val encode_config_diffs : (Config.t * Diff.t) list -> string
val decode_config_diffs : string -> (Config.t * Diff.t) list

val encode_matrix : Report.matrix -> string
val decode_matrix : string -> Report.matrix

(** Primitive wire helpers for sibling codecs (e.g. [Ds_graph]) that
    frame their own {!Ds_store} payloads but share this codec's byte
    conventions — length-prefixed strings, uleb128-counted lists, the
    {!Depset.dep} tagging — and its {!Decode_error} discipline. *)
module Prim : sig
  open Ds_util

  val w_str : Bytesio.Writer.t -> string -> unit
  val r_str : Bytesio.Reader.t -> string
  val w_bool : Bytesio.Writer.t -> bool -> unit
  val r_bool : Bytesio.Reader.t -> bool
  val w_list : Bytesio.Writer.t -> (Bytesio.Writer.t -> 'a -> unit) -> 'a list -> unit
  val r_list : Bytesio.Reader.t -> (Bytesio.Reader.t -> 'a) -> 'a list
  val w_opt : Bytesio.Writer.t -> (Bytesio.Writer.t -> 'a -> unit) -> 'a option -> unit
  val r_opt : Bytesio.Reader.t -> (Bytesio.Reader.t -> 'a) -> 'a option
  val w_version : Bytesio.Writer.t -> Version.t -> unit
  val r_version : Bytesio.Reader.t -> Version.t
  val w_config : Bytesio.Writer.t -> Config.t -> unit
  val r_config : Bytesio.Reader.t -> Config.t
  val w_dep : Bytesio.Writer.t -> Depset.dep -> unit
  val r_dep : Bytesio.Reader.t -> Depset.dep

  val expect_eof : Bytesio.Reader.t -> unit
  (** Raises {!Decode_error} when payload bytes remain. *)

  val fail : ('a, unit, string, 'b) format4 -> 'a
  (** Raise {!Decode_error} with a formatted message. *)
end
