(** Compact binary serialization of the pipeline's cacheable artifacts —
    surfaces, diff fan-outs and report matrices — for the {!Ds_store}
    persistent tier. Unlike {!Export} (the human-readable dataset JSON of
    the paper's artifact), this format is private to the cache: dense,
    versioned, and free to change — bumping {!version} silently invalidates
    every old entry because the version participates in the store keys. *)

open Ds_ksrc

val version : int
(** Schema version of this codec; part of every cache key. *)

exception Decode_error of string
(** Raised on an unknown tag or malformed payload ({!Ds_util.Bytesio}'s
    [Truncated] may also escape); the store treats any decode exception as
    a corrupt entry and recomputes. *)

val encode_surface : Surface.t -> string
val decode_surface : string -> Surface.t
(** Roundtrips through {!Surface.v}, which rebuilds the lookup index. *)

val encode_diff : Diff.t -> string
val decode_diff : string -> Diff.t

val encode_version_diffs : ((Version.t * Version.t) * Diff.t) list -> string
val decode_version_diffs : string -> ((Version.t * Version.t) * Diff.t) list
(** The [lts_diffs]/[release_diffs] fan-outs of {!Pipeline.cached}. *)

val encode_config_diffs : (Config.t * Diff.t) list -> string
val decode_config_diffs : string -> (Config.t * Diff.t) list

val encode_matrix : Report.matrix -> string
val decode_matrix : string -> Report.matrix
