open Ds_util
open Ds_ksrc
open Ds_ctypes

let version = 2

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

module W = Bytesio.Writer
module R = Bytesio.Reader

(* ------------------------- primitive helpers ------------------------- *)

(* length-prefixed rather than NUL-terminated: payload strings (section
   names, reasons) are arbitrary bytes *)
let w_str w s =
  W.uleb128 w (String.length s);
  W.bytes w s

let r_str r =
  let n = R.uleb128 r in
  R.bytes r n

let w_bool w b = W.u8 w (if b then 1 else 0)

let r_bool r = match R.u8 r with 0 -> false | 1 -> true | n -> fail "bool tag %d" n

let w_list w f l =
  W.uleb128 w (List.length l);
  List.iter (f w) l

(* explicit in-order loop: List.init's evaluation order is unspecified,
   and the element reads are side-effecting *)
let r_list r f =
  let n = R.uleb128 r in
  let rec go acc i = if i = 0 then List.rev acc else go (f r :: acc) (i - 1) in
  go [] n

let w_opt w f = function
  | None -> W.u8 w 0
  | Some v ->
      W.u8 w 1;
      f w v

let r_opt r f = match R.u8 r with 0 -> None | 1 -> Some (f r) | n -> fail "option tag %d" n

let w_pair fa fb w (a, b) =
  fa w a;
  fb w b

let r_pair fa fb r =
  let a = fa r in
  let b = fb r in
  (a, b)

(* ------------------------------ ctypes ------------------------------- *)

let rec w_ctype w (t : Ctype.t) =
  match t with
  | Void -> W.u8 w 0
  | Int { name; bits; signed } ->
      W.u8 w 1;
      w_str w name;
      W.uleb128 w bits;
      w_bool w signed
  | Float { name; bits } ->
      W.u8 w 2;
      w_str w name;
      W.uleb128 w bits
  | Ptr t ->
      W.u8 w 3;
      w_ctype w t
  | Array (t, n) ->
      W.u8 w 4;
      w_ctype w t;
      W.uleb128 w n
  | Struct_ref s ->
      W.u8 w 5;
      w_str w s
  | Union_ref s ->
      W.u8 w 6;
      w_str w s
  | Enum_ref s ->
      W.u8 w 7;
      w_str w s
  | Typedef_ref s ->
      W.u8 w 8;
      w_str w s
  | Const t ->
      W.u8 w 9;
      w_ctype w t
  | Volatile t ->
      W.u8 w 10;
      w_ctype w t
  | Func_proto p ->
      W.u8 w 11;
      w_proto w p

and w_proto w (p : Ctype.proto) =
  w_ctype w p.ret;
  w_list w
    (fun w (pa : Ctype.param) ->
      w_str w pa.pname;
      w_ctype w pa.ptype)
    p.params;
  w_bool w p.variadic

let rec r_ctype r : Ctype.t =
  match R.u8 r with
  | 0 -> Void
  | 1 ->
      let name = r_str r in
      let bits = R.uleb128 r in
      let signed = r_bool r in
      Int { name; bits; signed }
  | 2 ->
      let name = r_str r in
      let bits = R.uleb128 r in
      Float { name; bits }
  | 3 -> Ptr (r_ctype r)
  | 4 ->
      let t = r_ctype r in
      let n = R.uleb128 r in
      Array (t, n)
  | 5 -> Struct_ref (r_str r)
  | 6 -> Union_ref (r_str r)
  | 7 -> Enum_ref (r_str r)
  | 8 -> Typedef_ref (r_str r)
  | 9 -> Const (r_ctype r)
  | 10 -> Volatile (r_ctype r)
  | 11 -> Func_proto (r_proto r)
  | n -> fail "ctype tag %d" n

and r_proto r : Ctype.proto =
  let ret = r_ctype r in
  let params =
    r_list r (fun r ->
        let pname = r_str r in
        let ptype = r_ctype r in
        ({ pname; ptype } : Ctype.param))
  in
  let variadic = r_bool r in
  { ret; params; variadic }

let w_field w (f : Decl.field) =
  w_str w f.fname;
  w_ctype w f.ftype;
  W.uleb128 w f.bits_offset

let r_field r : Decl.field =
  let fname = r_str r in
  let ftype = r_ctype r in
  let bits_offset = R.uleb128 r in
  { fname; ftype; bits_offset }

let w_struct_def w (s : Decl.struct_def) =
  w_str w s.sname;
  W.u8 w (match s.skind with `Struct -> 0 | `Union -> 1);
  W.uleb128 w s.byte_size;
  w_list w w_field s.fields

let r_struct_def r : Decl.struct_def =
  let sname = r_str r in
  let skind = match R.u8 r with 0 -> `Struct | 1 -> `Union | n -> fail "skind tag %d" n in
  let byte_size = R.uleb128 r in
  let fields = r_list r r_field in
  { sname; skind; byte_size; fields }

let w_func_decl w (f : Decl.func_decl) =
  w_str w f.fname;
  w_proto w f.proto

let r_func_decl r : Decl.func_decl =
  let fname = r_str r in
  let proto = r_proto r in
  { fname; proto }

(* ----------------------------- surfaces ------------------------------ *)

let w_version w (v : Version.t) =
  W.uleb128 w v.major;
  W.uleb128 w v.minor

let r_version r : Version.t =
  let major = R.uleb128 r in
  let minor = R.uleb128 r in
  { major; minor }

let arch_tag : Config.arch -> int = function X86 -> 0 | Arm64 -> 1 | Arm32 -> 2 | Ppc -> 3 | Riscv -> 4

let arch_of_tag : int -> Config.arch = function
  | 0 -> X86
  | 1 -> Arm64
  | 2 -> Arm32
  | 3 -> Ppc
  | 4 -> Riscv
  | n -> fail "arch tag %d" n

let flavor_tag : Config.flavor -> int = function
  | Generic -> 0
  | Lowlatency -> 1
  | Aws -> 2
  | Azure -> 3
  | Gcp -> 4

let flavor_of_tag : int -> Config.flavor = function
  | 0 -> Generic
  | 1 -> Lowlatency
  | 2 -> Aws
  | 3 -> Azure
  | 4 -> Gcp
  | n -> fail "flavor tag %d" n

let w_config w (c : Config.t) =
  W.u8 w (arch_tag c.arch);
  W.u8 w (flavor_tag c.flavor)

let r_config r : Config.t =
  let arch = arch_of_tag (R.u8 r) in
  let flavor = flavor_of_tag (R.u8 r) in
  { arch; flavor }

let w_symbol w (s : Ds_elf.Elf.symbol) =
  w_str w s.sym_name;
  W.u64 w s.sym_value;
  W.uleb128 w s.sym_size;
  W.u8 w (match s.sym_bind with Local -> 0 | Global -> 1 | Weak -> 2);
  w_str w s.sym_section

let r_symbol r : Ds_elf.Elf.symbol =
  let sym_name = r_str r in
  let sym_value = R.u64 r in
  let sym_size = R.uleb128 r in
  let sym_bind : Ds_elf.Elf.sym_bind =
    match R.u8 r with 0 -> Local | 1 -> Global | 2 -> Weak | n -> fail "sym_bind tag %d" n
  in
  let sym_section = r_str r in
  { sym_name; sym_value; sym_size; sym_bind; sym_section }

let w_decl_instance w (d : Surface.decl_instance) =
  w_str w d.di_tu;
  w_str w d.di_file;
  W.uleb128 w d.di_line;
  w_proto w d.di_proto;
  w_bool w d.di_external;
  w_bool w d.di_declared_inline;
  w_opt w (fun w v -> W.u64 w v) d.di_low_pc

let r_decl_instance r : Surface.decl_instance =
  let di_tu = r_str r in
  let di_file = r_str r in
  let di_line = R.uleb128 r in
  let di_proto = r_proto r in
  let di_external = r_bool r in
  let di_declared_inline = r_bool r in
  let di_low_pc = r_opt r R.u64 in
  { di_tu; di_file; di_line; di_proto; di_external; di_declared_inline; di_low_pc }

let w_inline_site w (s : Surface.inline_site) =
  w_str w s.is_caller;
  w_str w s.is_tu;
  W.u64 w s.is_pc

let r_inline_site r : Surface.inline_site =
  let is_caller = r_str r in
  let is_tu = r_str r in
  let is_pc = R.u64 r in
  { is_caller; is_tu; is_pc }

let w_func_entry w (f : Surface.func_entry) =
  w_str w f.fe_name;
  w_list w w_decl_instance f.fe_decls;
  w_list w w_symbol f.fe_symbols;
  w_list w w_symbol f.fe_suffixed;
  w_list w w_inline_site f.fe_inline_sites;
  w_list w w_str f.fe_callers

let r_func_entry r : Surface.func_entry =
  let fe_name = r_str r in
  let fe_decls = r_list r r_decl_instance in
  let fe_symbols = r_list r r_symbol in
  let fe_suffixed = r_list r r_symbol in
  let fe_inline_sites = r_list r r_inline_site in
  let fe_callers = r_list r r_str in
  { fe_name; fe_decls; fe_symbols; fe_suffixed; fe_inline_sites; fe_callers }

let w_diag w (d : Diag.t) =
  W.u8 w (match d.Diag.d_severity with Warning -> 0 | Degraded -> 1 | Fatal -> 2);
  w_str w d.Diag.d_component;
  w_opt w w_str d.Diag.d_context;
  w_opt w (fun w n -> W.uleb128 w n) d.Diag.d_offset;
  w_str w d.Diag.d_message

let r_diag r : Diag.t =
  let d_severity : Diag.severity =
    match R.u8 r with 0 -> Warning | 1 -> Degraded | 2 -> Fatal | n -> fail "severity tag %d" n
  in
  let d_component = r_str r in
  let d_context = r_opt r r_str in
  let d_offset = r_opt r R.uleb128 in
  let d_message = r_str r in
  { d_severity; d_component; d_context; d_offset; d_message }

let w_tp_entry w (t : Surface.tp_entry) =
  w_str w t.te_name;
  w_str w t.te_class;
  w_opt w w_struct_def t.te_event_struct;
  w_opt w w_func_decl t.te_func

let r_tp_entry r : Surface.tp_entry =
  let te_name = r_str r in
  let te_class = r_str r in
  let te_event_struct = r_opt r r_struct_def in
  let te_func = r_opt r r_func_decl in
  { te_name; te_class; te_event_struct; te_func }

let encode_surface (s : Surface.t) =
  let w = W.create () in
  w_version w s.s_version;
  W.u8 w (arch_tag s.s_arch);
  W.u8 w (flavor_tag s.s_flavor);
  W.uleb128 w (fst s.s_gcc);
  W.uleb128 w (snd s.s_gcc);
  w_list w w_func_entry s.s_funcs;
  w_list w w_struct_def s.s_structs;
  w_list w w_tp_entry s.s_tracepoints;
  w_list w w_str s.s_syscalls;
  w_list w w_diag s.s_health;
  W.contents w

let expect_eof r = if not (R.eof r) then fail "trailing payload bytes"

let decode_surface data =
  let r = R.of_string data in
  let version = r_version r in
  let arch = arch_of_tag (R.u8 r) in
  let flavor = flavor_of_tag (R.u8 r) in
  let gcc_major = R.uleb128 r in
  let gcc_minor = R.uleb128 r in
  let funcs = r_list r r_func_entry in
  let structs = r_list r r_struct_def in
  let tracepoints = r_list r r_tp_entry in
  let syscalls = r_list r r_str in
  let health = r_list r r_diag in
  expect_eof r;
  Surface.with_health health
    (Surface.v ~version ~arch ~flavor ~gcc:(gcc_major, gcc_minor) ~funcs ~structs ~tracepoints
       ~syscalls)

(* ------------------------------- diffs ------------------------------- *)

let w_func_change w (c : Diff.func_change) =
  match c with
  | Param_added s ->
      W.u8 w 0;
      w_str w s
  | Param_removed s ->
      W.u8 w 1;
      w_str w s
  | Param_reordered -> W.u8 w 2
  | Param_type_changed (s, a, b) ->
      W.u8 w 3;
      w_str w s;
      w_ctype w a;
      w_ctype w b
  | Return_type_changed (a, b) ->
      W.u8 w 4;
      w_ctype w a;
      w_ctype w b

let r_func_change r : Diff.func_change =
  match R.u8 r with
  | 0 -> Param_added (r_str r)
  | 1 -> Param_removed (r_str r)
  | 2 -> Param_reordered
  | 3 ->
      let s = r_str r in
      let a = r_ctype r in
      let b = r_ctype r in
      Param_type_changed (s, a, b)
  | 4 ->
      let a = r_ctype r in
      let b = r_ctype r in
      Return_type_changed (a, b)
  | n -> fail "func_change tag %d" n

let w_field_change w (c : Diff.field_change) =
  match c with
  | Field_added s ->
      W.u8 w 0;
      w_str w s
  | Field_removed s ->
      W.u8 w 1;
      w_str w s
  | Field_type_changed (s, a, b) ->
      W.u8 w 2;
      w_str w s;
      w_ctype w a;
      w_ctype w b

let r_field_change r : Diff.field_change =
  match R.u8 r with
  | 0 -> Field_added (r_str r)
  | 1 -> Field_removed (r_str r)
  | 2 ->
      let s = r_str r in
      let a = r_ctype r in
      let b = r_ctype r in
      Field_type_changed (s, a, b)
  | n -> fail "field_change tag %d" n

let w_tp_change w (c : Diff.tp_change) =
  match c with
  | Event_struct_changed cs ->
      W.u8 w 0;
      w_list w w_field_change cs
  | Tracing_func_changed cs ->
      W.u8 w 1;
      w_list w w_func_change cs

let r_tp_change r : Diff.tp_change =
  match R.u8 r with
  | 0 -> Event_struct_changed (r_list r r_field_change)
  | 1 -> Tracing_func_changed (r_list r r_func_change)
  | n -> fail "tp_change tag %d" n

let w_item_diff wc w (d : _ Diff.item_diff) =
  W.uleb128 w d.d_common;
  w_list w w_str d.d_added;
  w_list w w_str d.d_removed;
  w_list w
    (fun w (name, cs) ->
      w_str w name;
      w_list w wc cs)
    d.d_changed

let r_item_diff rc r : _ Diff.item_diff =
  let d_common = R.uleb128 r in
  let d_added = r_list r r_str in
  let d_removed = r_list r r_str in
  let d_changed =
    r_list r (fun r ->
        let name = r_str r in
        let cs = r_list r rc in
        (name, cs))
  in
  { d_common; d_added; d_removed; d_changed }

let w_diff w (d : Diff.t) =
  w_item_diff w_func_change w d.df_funcs;
  w_item_diff w_field_change w d.df_structs;
  w_item_diff w_tp_change w d.df_tracepoints;
  w_item_diff (fun w () -> W.u8 w 0) w d.df_syscalls

let r_diff r : Diff.t =
  let df_funcs = r_item_diff r_func_change r in
  let df_structs = r_item_diff r_field_change r in
  let df_tracepoints = r_item_diff r_tp_change r in
  let df_syscalls =
    r_item_diff (fun r -> match R.u8 r with 0 -> () | n -> fail "unit tag %d" n) r
  in
  { df_funcs; df_structs; df_tracepoints; df_syscalls }

let encode_diff d =
  let w = W.create () in
  w_diff w d;
  W.contents w

let decode_diff data =
  let r = R.of_string data in
  let d = r_diff r in
  expect_eof r;
  d

let encode_version_diffs l =
  let w = W.create () in
  w_list w (w_pair (w_pair w_version w_version) w_diff) l;
  W.contents w

let decode_version_diffs data =
  let r = R.of_string data in
  let l = r_list r (r_pair (r_pair r_version r_version) r_diff) in
  expect_eof r;
  l

let encode_config_diffs l =
  let w = W.create () in
  w_list w (w_pair w_config w_diff) l;
  W.contents w

let decode_config_diffs data =
  let r = R.of_string data in
  let l = r_list r (r_pair r_config r_diff) in
  expect_eof r;
  l
