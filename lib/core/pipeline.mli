(** One-call drivers tying the whole system together: generate the kernel
    history, compile the image matrix, extract surfaces, and analyze
    programs — the workflow of the paper's Figure 3. *)

open Ds_ksrc

val default_seed : int64

val dataset : ?seed:int64 -> ?store:Ds_store.Store.t -> Calibration.scale -> Dataset.t
(** With [store], the dataset (and the diff/matrix drivers below) gain a
    persistent on-disk tier — see {!Dataset.build}. *)

type cached
(** A dataset plus once-memoized pairwise diff fan-outs shared by the CLI
    and the bench harness (Tables 1/3/4/5, ablations), so the same diffs
    are never recomputed. When built with a pool, the fan-outs run through
    {!Ds_util.Par.map_list} (input order preserved, so output is identical
    to the sequential run). *)

val cached : ?pool:Ds_util.Par.pool -> Dataset.t -> cached

val dataset_cached :
  ?seed:int64 -> ?pool:Ds_util.Par.pool -> ?store:Ds_store.Store.t -> Calibration.scale -> cached
(** [cached] over a fresh {!dataset}. *)

val cached_dataset : cached -> Dataset.t

val lts_diffs : cached -> ((Version.t * Version.t) * Diff.t) list
(** Diffs of consecutive LTS pairs (x86/generic), computed once. *)

val release_diffs : cached -> ((Version.t * Version.t) * Diff.t) list
(** Diffs of all consecutive release pairs (x86/generic), computed once. *)

val config_diffs : cached -> (Config.t * Diff.t) list
(** Diffs of every non-default study config against x86/generic at v5.4,
    computed once. *)

val analyze :
  Dataset.t ->
  ?images:(Version.t * Config.t) list ->
  ?baseline:Version.t * Config.t ->
  Ds_bpf.Obj.t ->
  Report.matrix
(** Defaults: the 21 Figure-4 images, baseline v5.4/x86. *)

val load_on :
  Dataset.t -> Version.t -> Config.t -> Ds_bpf.Obj.t ->
  (Ds_bpf.Loader.attachment list, Ds_bpf.Loader.error) result
(** Try to actually load+attach the object on one image (loader path). *)

val build_program :
  Dataset.t ->
  ?build : Version.t * Config.t ->
  Ds_bpf.Progbuild.spec ->
  Ds_bpf.Obj.t
(** "Compile" a program spec against a build kernel (default v5.4/x86),
    through the serialized object bytes so the depset analysis reads the
    same artifact a real toolchain would produce. *)
