open Ds_ksrc
module Par = Ds_util.Par
module Store = Ds_store.Store

let default_seed = 0xD5EED5EEDL

let dataset ?(seed = default_seed) ?store scale = Dataset.build ~seed ?store scale

type cached = {
  c_ds : Dataset.t;
  c_pool : Par.pool option;
  c_lts : (unit, ((Version.t * Version.t) * Diff.t) list) Par.Memo.t;
  c_release : (unit, ((Version.t * Version.t) * Diff.t) list) Par.Memo.t;
  c_config : (unit, (Config.t * Diff.t) list) Par.Memo.t;
}

let cached ?pool ds =
  {
    c_ds = ds;
    c_pool = pool;
    c_lts = Par.Memo.create 1;
    c_release = Par.Memo.create 1;
    c_config = Par.Memo.create 1;
  }

let dataset_cached ?(seed = default_seed) ?pool ?store scale =
  cached ?pool (dataset ~seed ?store scale)
let cached_dataset c = c.c_ds

let maplist c f xs =
  match c.c_pool with None -> List.map f xs | Some p -> Par.map_list_chunked p f xs

let x86 c v = Dataset.surface c.c_ds v Config.x86_generic

let version_diffs c pairs =
  maplist c
    (fun (a, b) ->
      Ds_trace.Trace.span ~name:"pipeline.diff"
        ~attrs:[ ("from", Version.to_string a); ("to", Version.to_string b) ]
        (fun () ->
          ((a, b), Diff.compare_surfaces Diff.Across_versions (x86 c a) (x86 c b))))
    pairs

(* the diff fan-outs also land in the persistent tier: a warm process
   loads them without touching any surface *)
let diff_memo c ~label ~encode ~decode compute =
  Store.memo (Dataset.store c.c_ds) ~ns:"diff"
    ~key:(Dataset.cache_key c.c_ds ~label [])
    ~encode ~decode compute

let lts_diffs c =
  Par.Memo.find_or_compute c.c_lts () (fun () ->
      diff_memo c ~label:"lts-diffs" ~encode:Codec.encode_version_diffs
        ~decode:Codec.decode_version_diffs (fun () ->
          version_diffs c (Version.pairs Version.lts)))

let release_diffs c =
  Par.Memo.find_or_compute c.c_release () (fun () ->
      diff_memo c ~label:"release-diffs" ~encode:Codec.encode_version_diffs
        ~decode:Codec.decode_version_diffs (fun () ->
          version_diffs c (Version.pairs Version.all)))

let config_diffs c =
  Par.Memo.find_or_compute c.c_config () (fun () ->
      diff_memo c ~label:"config-diffs" ~encode:Codec.encode_config_diffs
        ~decode:Codec.decode_config_diffs (fun () ->
          let base = x86 c (Version.v 5 4) in
          let others =
            List.filter
              (fun cfg -> not (Config.equal cfg Config.x86_generic))
              Config.study_configs
          in
          maplist c
            (fun cfg ->
              Ds_trace.Trace.span ~name:"pipeline.diff"
                ~attrs:[ ("config", Config.to_string cfg) ]
                (fun () ->
                  ( cfg,
                    Diff.compare_surfaces Diff.Across_configs base
                      (Dataset.surface c.c_ds (Version.v 5 4) cfg) )))
            others))

let image_tag (v, cfg) = Version.to_string v ^ "/" ^ Config.to_string cfg

let analyze ds ?(images = Dataset.fig4_images) ?(baseline = (Version.v 5 4, Config.x86_generic))
    obj =
  (* content-addressed on the serialized object plus the image set, so a
     changed program or image list never reuses a stale matrix *)
  let key =
    Dataset.cache_key ds
      ~label:("matrix-" ^ obj.Ds_bpf.Obj.o_name)
      (Ds_bpf.Obj.write obj :: image_tag baseline :: List.map image_tag images)
  in
  Ds_trace.Trace.span ~name:"pipeline.analyze" ~attrs:[ ("obj", obj.Ds_bpf.Obj.o_name) ]
    (fun () ->
      Store.memo (Dataset.store ds) ~ns:"matrix" ~key ~encode:Codec.encode_matrix
        ~decode:Codec.decode_matrix (fun () -> Report.matrix ds ~images ~baseline obj))

let load_on ds v cfg obj = Ds_bpf.Loader.load_and_attach (Dataset.vmlinux ds v cfg) obj

let build_program ds ?(build = (Version.v 5 4, Config.x86_generic)) spec =
  let v, cfg = build in
  let k = Dataset.vmlinux ds v cfg in
  let obj =
    Ds_bpf.Progbuild.build ~build_btf:k.Ds_bpf.Vmlinux.v_btf ~build_arch:cfg.Config.arch
      ~tag:(Ds_bpf.Vmlinux.tag k) spec
  in
  (* round-trip through the wire format *)
  Ds_util.Diag.ok (Ds_bpf.Obj.read (Ds_bpf.Obj.write obj))
