open Ds_ksrc
module Par = Ds_util.Par

let default_seed = 0xD5EED5EEDL

let dataset ?(seed = default_seed) scale = Dataset.build ~seed scale

type cached = {
  c_ds : Dataset.t;
  c_pool : Par.pool option;
  c_lts : (unit, ((Version.t * Version.t) * Diff.t) list) Par.Memo.t;
  c_release : (unit, ((Version.t * Version.t) * Diff.t) list) Par.Memo.t;
  c_config : (unit, (Config.t * Diff.t) list) Par.Memo.t;
}

let cached ?pool ds =
  {
    c_ds = ds;
    c_pool = pool;
    c_lts = Par.Memo.create 1;
    c_release = Par.Memo.create 1;
    c_config = Par.Memo.create 1;
  }

let dataset_cached ?(seed = default_seed) ?pool scale = cached ?pool (dataset ~seed scale)
let cached_dataset c = c.c_ds

let maplist c f xs =
  match c.c_pool with None -> List.map f xs | Some p -> Par.map_list p f xs

let x86 c v = Dataset.surface c.c_ds v Config.x86_generic

let version_diffs c pairs =
  maplist c
    (fun (a, b) -> ((a, b), Diff.compare_surfaces Diff.Across_versions (x86 c a) (x86 c b)))
    pairs

let lts_diffs c =
  Par.Memo.find_or_compute c.c_lts () (fun () -> version_diffs c (Version.pairs Version.lts))

let release_diffs c =
  Par.Memo.find_or_compute c.c_release () (fun () -> version_diffs c (Version.pairs Version.all))

let config_diffs c =
  Par.Memo.find_or_compute c.c_config () (fun () ->
      let base = x86 c (Version.v 5 4) in
      let others =
        List.filter (fun cfg -> not (Config.equal cfg Config.x86_generic)) Config.study_configs
      in
      maplist c
        (fun cfg ->
          (cfg, Diff.compare_surfaces Diff.Across_configs base
                  (Dataset.surface c.c_ds (Version.v 5 4) cfg)))
        others)

let analyze ds ?(images = Dataset.fig4_images) ?(baseline = (Version.v 5 4, Config.x86_generic))
    obj =
  Report.matrix ds ~images ~baseline obj

let load_on ds v cfg obj = Ds_bpf.Loader.load_and_attach (Dataset.vmlinux ds v cfg) obj

let build_program ds ?(build = (Version.v 5 4, Config.x86_generic)) spec =
  let v, cfg = build in
  let k = Dataset.vmlinux ds v cfg in
  let obj =
    Ds_bpf.Progbuild.build ~build_btf:k.Ds_bpf.Vmlinux.v_btf ~build_arch:cfg.Config.arch
      ~tag:(Ds_bpf.Vmlinux.tag k) spec
  in
  (* round-trip through the wire format *)
  Ds_bpf.Obj.read (Ds_bpf.Obj.write obj)
