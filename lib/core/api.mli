(** The versioned public response envelope.

    Every JSON answer the project gives — serve endpoints and [--json]
    CLI output alike — is wrapped in one shape:

    {v
    { "v": 1,
      "health": "clean" | "degraded" | "fatal",
      "data": <endpoint-specific payload>,
      "diagnostics": [ "<Diag.to_string line>", ... ] }
    v}

    The [data] payload keeps the historical (appendix-format) encodings
    from {!Export} byte-for-byte; the envelope only adds the version and
    health wrapper around them. *)

val version : int
(** The current envelope version, [1]. *)

val envelope :
  ?health:string -> ?diagnostics:Ds_util.Json.t list -> Ds_util.Json.t -> Ds_util.Json.t
(** Wrap a payload. [health] defaults to ["clean"], [diagnostics] to
    the empty list. *)

val of_diags : data:Ds_util.Json.t -> Ds_util.Diag.t list -> Ds_util.Json.t
(** Wrap a payload deriving [health] from the worst diagnostic severity
    (warnings count as clean) and rendering each diagnostic with
    [Diag.to_string]. *)

val error_envelope : status:int -> ?diagnostics:string list -> string -> Ds_util.Json.t
(** The one constructor every non-2xx body goes through: [health =
    "fatal"], the message as the first diagnostic (followed by any
    extra [diagnostics]) and as [data.error], the HTTP status under
    [data.status]. Serve routes 400/404/405/408/413/431/503 through
    this so error payloads are uniform (golden-pinned in the tests). *)

val error : status:int -> string -> Ds_util.Json.t
(** [error ~status msg] is [error_envelope ~status msg] — the
    historical name, kept for callers that predate the uniform
    constructor. *)

val data : Ds_util.Json.t -> Ds_util.Json.t
(** Unwrap: the [data] member of an envelope, or the document itself
    when it is not enveloped (pre-v1 producers). *)

(** {2 Mutation request envelope}

    Mutating endpoints ([POST /v1/mismatch], [POST /v1/verify],
    [POST /v1/subscriptions]) share one request schema:

    {v
    { "v": 1,
      "params": { "<query-param>": "<value>", ... },   (optional)
      "body": "<base64>" | { ...inline JSON... } }     (optional)
    v}

    [params] entries override query-string parameters of the same name;
    [body] is either base64 (for binary payloads such as BPF objects)
    or an inline JSON document (for JSON endpoints). Bare bodies —
    raw bytes or plain JSON without a ["v"] member — are still accepted
    unchanged and answer byte-identically (equivalence-tested). *)

type mutation = {
  mu_params : (string * string) list;  (** envelope [params], decoded *)
  mu_body : string;  (** the effective request body bytes *)
  mu_enveloped : bool;  (** whether the envelope spelling was used *)
}

val parse_mutation : string -> (mutation, string list) result
(** Classify and decode a mutating request body. A body that does not
    parse as a JSON object with a ["v"] member is bare: returned
    verbatim with no params. [Error problems] lists every validation
    failure of an enveloped body (bad version, non-string params,
    invalid base64, unknown members) for the uniform 400 diagnostics
    payload. *)
