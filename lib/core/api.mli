(** The versioned public response envelope.

    Every JSON answer the project gives — serve endpoints and [--json]
    CLI output alike — is wrapped in one shape:

    {v
    { "v": 1,
      "health": "clean" | "degraded" | "fatal",
      "data": <endpoint-specific payload>,
      "diagnostics": [ "<Diag.to_string line>", ... ] }
    v}

    The [data] payload keeps the historical (appendix-format) encodings
    from {!Export} byte-for-byte; the envelope only adds the version and
    health wrapper around them. *)

val version : int
(** The current envelope version, [1]. *)

val envelope :
  ?health:string -> ?diagnostics:Ds_util.Json.t list -> Ds_util.Json.t -> Ds_util.Json.t
(** Wrap a payload. [health] defaults to ["clean"], [diagnostics] to
    the empty list. *)

val of_diags : data:Ds_util.Json.t -> Ds_util.Diag.t list -> Ds_util.Json.t
(** Wrap a payload deriving [health] from the worst diagnostic severity
    (warnings count as clean) and rendering each diagnostic with
    [Diag.to_string]. *)

val error : status:int -> string -> Ds_util.Json.t
(** The envelope used for error responses: [health = "fatal"], the
    message as both diagnostic and [data.error], the HTTP status under
    [data.status]. *)

val data : Ds_util.Json.t -> Ds_util.Json.t
(** Unwrap: the [data] member of an envelope, or the document itself
    when it is not enveloped (pre-v1 producers). *)
