(** Dataset export in the format of the paper's artifact appendix (A.2.4):
    function status, function declarations, structs and tracepoints as
    JSON documents. This is the public DepSurf-dataset format, so the
    encodings follow the appendix examples field by field (addresses,
    [collision_type]/[inline_type] strings, ["file:line"] locations,
    ["caller_inline"]/["caller_func"] lists, and the recursive
    kind/name/type encoding of declarations). *)

open Ds_util

val json_of_ctype : Ds_ctypes.Ctype.t -> Json.t
(** The appendix's recursive type encoding: [{"kind": "PTR", "type":
    {"kind": "STRUCT", "name": "file"}}]. *)

val func_decl : name:string -> Ds_ctypes.Ctype.proto -> Json.t
(** Appendix "Function Declaration": FUNC / FUNC_PROTO / params /
    ret_type. *)

val struct_def : Ds_ctypes.Decl.struct_def -> Json.t
(** Appendix "Struct": kind/name/size/members with bit offsets. *)

val func_status : Surface.func_entry -> Json.t
(** Appendix "Function Status": per-instance records with inline status,
    inlined and direct callers, plus the matching symbol-table entries. *)

val tracepoint : Surface.tp_entry -> Json.t
(** Appendix "Tracepoint": class/event/func/struct names plus the decoded
    tracing-function declaration and event struct. *)

val surface : Surface.t -> Json.t
(** A whole surface: identity + every construct, keyed by name. *)

val matrix : Report.matrix -> Json.t
(** A program's mismatch report: per dependency, per image, the status
    letters and human-readable reasons. *)

(** {2 Query-service views (the [depsurf serve] wire format)} *)

val health_label : Ds_util.Diag.t list -> string
(** ["clean"] (no diagnostics, or warnings only), ["degraded"] or
    ["fatal"] — the string the server puts in every surface response. *)

val health : Ds_util.Diag.t list -> Json.t
(** [{"health": ..., "diagnostics": [...]}] *)

val surface_with_health : Surface.t -> Json.t
(** {!surface} with the {!health} fields prepended, so a degraded image
    still answers HTTP 200 and the caller can see what was lost. *)

val diff : Diff.t -> Json.t
(** A pairwise surface diff: per construct kind, common count plus
    added/removed names and changed entries with human-readable
    reasons. *)

val dep : Depset.dep -> Json.t
(** A dependency node in the canonical ["kind:name"] syntax of
    {!Depset.dep_to_string} — the node encoding of the [/v1/graph/*]
    endpoints. *)

val dep_list : Depset.dep list -> Json.t
