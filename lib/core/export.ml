open Ds_util
open Ds_ctypes
open Ds_ksrc

let rec json_of_ctype (t : Ctype.t) : Json.t =
  match t with
  | Ctype.Void -> Json.Obj [ ("name", Json.String "void"); ("kind", Json.String "VOID") ]
  | Ctype.Int { name; _ } ->
      Json.Obj [ ("kind", Json.String "INT"); ("name", Json.String name) ]
  | Ctype.Float { name; _ } ->
      Json.Obj [ ("kind", Json.String "FLOAT"); ("name", Json.String name) ]
  | Ctype.Ptr inner -> Json.Obj [ ("kind", Json.String "PTR"); ("type", json_of_ctype inner) ]
  | Ctype.Array (inner, n) ->
      Json.Obj
        [ ("kind", Json.String "ARRAY"); ("type", json_of_ctype inner); ("nr_elems", Json.Int n) ]
  | Ctype.Struct_ref name ->
      Json.Obj [ ("kind", Json.String "STRUCT"); ("name", Json.String name) ]
  | Ctype.Union_ref name ->
      Json.Obj [ ("kind", Json.String "UNION"); ("name", Json.String name) ]
  | Ctype.Enum_ref name -> Json.Obj [ ("kind", Json.String "ENUM"); ("name", Json.String name) ]
  | Ctype.Typedef_ref name ->
      Json.Obj [ ("kind", Json.String "TYPEDEF"); ("name", Json.String name) ]
  | Ctype.Const inner ->
      Json.Obj [ ("kind", Json.String "CONST"); ("type", json_of_ctype inner) ]
  | Ctype.Volatile inner ->
      Json.Obj [ ("kind", Json.String "VOLATILE"); ("type", json_of_ctype inner) ]
  | Ctype.Func_proto proto -> proto_json proto

and proto_json (proto : Ctype.proto) : Json.t =
  Json.Obj
    [
      ("kind", Json.String "FUNC_PROTO");
      ( "params",
        Json.List
          (List.map
             (fun (p : Ctype.param) ->
               Json.Obj [ ("name", Json.String p.pname); ("type", json_of_ctype p.ptype) ])
             proto.params) );
      ("ret_type", json_of_ctype proto.ret);
    ]

let func_decl ~name proto =
  Json.Obj
    [ ("kind", Json.String "FUNC"); ("name", Json.String name); ("type", proto_json proto) ]

let struct_def (s : Decl.struct_def) =
  Json.Obj
    [
      ("kind", Json.String (match s.skind with `Struct -> "STRUCT" | `Union -> "UNION"));
      ("name", Json.String s.sname);
      ("size", Json.Int s.byte_size);
      ( "members",
        Json.List
          (List.map
             (fun (f : Decl.field) ->
               Json.Obj
                 [
                   ("name", Json.String f.fname);
                   ("bits_offset", Json.Int f.bits_offset);
                   ("type", json_of_ctype f.ftype);
                 ])
             s.fields) );
    ]

let collision_type_string = function
  | Func_status.Unique_global -> "Unique Global"
  | Func_status.Unique_static -> "Unique Static"
  | Func_status.Duplication -> "Duplication"
  | Func_status.Static_static_collision -> "Static-Static Collision"
  | Func_status.Static_global_collision -> "Static-Global Collision"

let inline_type_string = function
  | Func_status.Not_inlined -> "Not inlined"
  | Func_status.Fully_inlined -> "Fully inlined"
  | Func_status.Selectively_inlined -> "Partially inlined"

let inline_attr_string (d : Surface.decl_instance) =
  match d.di_declared_inline, d.di_low_pc with
  | true, Some _ -> "declared, not inlined"
  | true, None -> "declared, inlined"
  | false, Some _ -> "not declared, not inlined"
  | false, None -> "not declared, inlined"

let func_status (fe : Surface.func_entry) =
  let funcs =
    List.map
      (fun (d : Surface.decl_instance) ->
        Json.Obj
          ([
             ( "addr",
               match d.di_low_pc with
               | Some a -> Json.Int (Int64.to_int (Int64.logand a 0xFFFFFFFFFFFFFFL))
               | None -> Json.Null );
             ("name", Json.String fe.fe_name);
             ("external", Json.Bool d.di_external);
             ("loc", Json.String (Printf.sprintf "%s:%d" d.di_file d.di_line));
             ("file", Json.String d.di_tu);
             ("inline", Json.String (inline_attr_string d));
           ]
          @ [
              ( "caller_inline",
                Json.List
                  (List.filter_map
                     (fun (s : Surface.inline_site) ->
                       if s.is_tu = d.di_tu || List.length fe.fe_decls = 1 then
                         Some (Json.String (Printf.sprintf "%s:%s" s.is_tu s.is_caller))
                       else None)
                     fe.fe_inline_sites) );
              ( "caller_func",
                Json.List (List.map (fun c -> Json.String c) fe.fe_callers) );
            ]))
      fe.fe_decls
  in
  let symbols =
    List.map
      (fun (sym : Ds_elf.Elf.symbol) ->
        Json.Obj
          [
            ("addr", Json.Int (Int64.to_int (Int64.logand sym.sym_value 0xFFFFFFFFFFFFFFL)));
            ("name", Json.String sym.sym_name);
            ("section", Json.String sym.sym_section);
            ( "bind",
              Json.String
                (match sym.sym_bind with
                | Ds_elf.Elf.Global -> "STB_GLOBAL"
                | Ds_elf.Elf.Local -> "STB_LOCAL"
                | Ds_elf.Elf.Weak -> "STB_WEAK") );
            ("size", Json.Int sym.sym_size);
          ])
      (fe.fe_symbols @ fe.fe_suffixed)
  in
  Json.Obj
    [
      ("name", Json.String fe.fe_name);
      ("collision_type", Json.String (collision_type_string (Func_status.name_status fe)));
      ("inline_type", Json.String (inline_type_string (Func_status.inline_status fe)));
      ("decl", func_decl ~name:fe.fe_name (Surface.representative_proto fe));
      ("funcs", Json.List funcs);
      ("symbols", Json.List symbols);
    ]

let tracepoint (tp : Surface.tp_entry) =
  Json.Obj
    ([
       ("class_name", Json.String tp.te_class);
       ("event_name", Json.String tp.te_name);
       ("func_name", Json.String ("trace_event_raw_event_" ^ tp.te_class));
       ("struct_name", Json.String ("trace_event_raw_" ^ tp.te_class));
     ]
    @ (match tp.te_func with
      | Some f -> [ ("func", func_decl ~name:f.Decl.fname f.Decl.proto) ]
      | None -> [])
    @
    match tp.te_event_struct with
    | Some s -> [ ("struct", struct_def s) ]
    | None -> [])

let surface (s : Surface.t) =
  Json.Obj
    [
      ("version", Json.String (Version.to_string s.s_version));
      ("arch", Json.String (Config.arch_to_string s.s_arch));
      ("flavor", Json.String (Config.flavor_to_string s.s_flavor));
      ( "gcc",
        Json.String (Printf.sprintf "%d.%d" (fst s.s_gcc) (snd s.s_gcc)) );
      ( "funcs",
        Json.Obj
          (List.map (fun fe -> (fe.Surface.fe_name, func_status fe)) s.s_funcs) );
      ( "structs",
        Json.Obj (List.map (fun st -> (st.Decl.sname, struct_def st)) s.s_structs) );
      ( "tracepoints",
        Json.Obj (List.map (fun tp -> (tp.Surface.te_name, tracepoint tp)) s.s_tracepoints) );
      ("syscalls", Json.List (List.map (fun sc -> Json.String sc) s.s_syscalls));
    ]


let health_label diags =
  match Ds_util.Diag.worst diags with
  | None | Some Ds_util.Diag.Warning -> "clean"
  | Some Ds_util.Diag.Degraded -> "degraded"
  | Some Ds_util.Diag.Fatal -> "fatal"

let health diags =
  Json.Obj
    [
      ("health", Json.String (health_label diags));
      ( "diagnostics",
        Json.List (List.map (fun d -> Json.String (Ds_util.Diag.to_string d)) diags) );
    ]

let surface_with_health (s : Surface.t) =
  match health (Surface.health s), surface s with
  | Json.Obj h, Json.Obj fields -> Json.Obj (h @ fields)
  | _ -> assert false

let item_diff describe (d : 'c Diff.item_diff) =
  Json.Obj
    [
      ("common", Json.Int d.Diff.d_common);
      ("added", Json.List (List.map (fun n -> Json.String n) d.Diff.d_added));
      ("removed", Json.List (List.map (fun n -> Json.String n) d.Diff.d_removed));
      ( "changed",
        Json.List
          (List.map
             (fun (name, changes) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("reasons", Json.List (List.map (fun c -> Json.String (describe c)) changes));
                 ])
             d.Diff.d_changed) );
    ]

let diff (d : Diff.t) =
  Json.Obj
    [
      ("funcs", item_diff Diff.describe_func_change d.Diff.df_funcs);
      ("structs", item_diff Diff.describe_field_change d.Diff.df_structs);
      ("tracepoints", item_diff Diff.describe_tp_change d.Diff.df_tracepoints);
      ("syscalls", item_diff (fun () -> "") d.Diff.df_syscalls);
    ]

let status_json (st : Report.status) =
  match st with
  | Report.St_changed reasons ->
      Json.Obj
        [ ("status", Json.String "changed"); ("reasons", Json.List (List.map (fun r -> Json.String r) reasons)) ]
  | st ->
      Json.Obj
        [
          ( "status",
            Json.String
              (match st with
              | Report.St_ok -> "ok"
              | Report.St_absent -> "absent"
              | Report.St_full_inline -> "full_inline"
              | Report.St_selective_inline -> "selective_inline"
              | Report.St_transformed -> "transformed"
              | Report.St_duplicated -> "duplicated"
              | Report.St_collision -> "collision"
              | Report.St_changed _ -> assert false) );
        ]

let matrix (m : Report.matrix) =
  let image_label (v, cfg) =
    Printf.sprintf "%s/%s" (Version.to_string v) (Config.to_string cfg)
  in
  Json.Obj
    [
      ("program", Json.String m.Report.m_obj_name);
      ("baseline", Json.String (image_label m.Report.m_baseline));
      ( "dependencies",
        Json.List
          (List.map
             (fun (row : Report.dep_row) ->
               Json.Obj
                 [
                   ("dep", Json.String (Depset.dep_to_string row.Report.r_dep));
                   ( "images",
                     Json.Obj
                       (List.map
                          (fun (c : Report.cell) ->
                            ( image_label c.Report.c_image,
                              Json.List (List.map status_json c.Report.c_statuses) ))
                          row.Report.r_cells) );
                 ])
             m.Report.m_rows) );
    ]

let dep d = Json.String (Depset.dep_to_string d)

let dep_list deps = Json.List (List.map dep deps)
