(** Dependency-set extraction from eBPF object files (paper §3.4): hooks
    from section names, struct/field dependencies from the CO-RE
    relocation records, with every intermediate link of a chained access
    recorded. *)

type dep =
  | Dep_func of string  (** kprobe/kretprobe/fentry/fexit/lsm target *)
  | Dep_struct of string
  | Dep_field of string * string
  | Dep_tracepoint of string
  | Dep_syscall of string

val compare_dep : dep -> dep -> int

val dep_to_string : dep -> string
(** ["func:NAME"], ["struct:NAME"], ["field:STRUCT::FIELD"],
    ["tracepoint:NAME"], ["syscall:NAME"] — the canonical node syntax of
    the dependency graph (CLI arguments, [/v1/graph/*] path segments). *)

val dep_of_string : string -> dep option
(** Inverse of {!dep_to_string}. A bare name with no [kind:] prefix
    parses as [Dep_func] (the common CLI shorthand); [None] on an
    unknown kind, an empty name, or a malformed [field:] payload. *)

val of_obj : Ds_bpf.Obj.t -> dep list
(** Deduplicated, ordered: functions, structs, fields, tracepoints,
    syscalls. *)

type totals = {
  n_funcs : int;
  n_structs : int;
  n_fields : int;
  n_tracepoints : int;
  n_syscalls : int;
}

val totals : dep list -> totals
