open Ds_ksrc
open Ds_ctypes

type status =
  | St_ok
  | St_absent
  | St_changed of string list
  | St_full_inline
  | St_selective_inline
  | St_transformed
  | St_duplicated
  | St_collision

let status_letter = function
  | St_ok -> "."
  | St_absent -> "x"
  | St_changed _ -> "C"
  | St_full_inline -> "F"
  | St_selective_inline -> "S"
  | St_transformed -> "T"
  | St_duplicated -> "D"
  | St_collision -> "N"

let severity = function
  | St_absent -> 0
  | St_full_inline -> 1
  | St_transformed -> 2
  | St_changed _ -> 3
  | St_duplicated -> 4 (* a header copy per TU dominates partial inlining:
                          both lose invocations, duplication also splits
                          the symbol (Fig. 4's D cells) *)
  | St_selective_inline -> 5
  | St_collision -> 6
  | St_ok -> 7

let worst = function
  | [] -> St_ok
  | statuses -> List.hd (List.sort (fun a b -> compare (severity a) (severity b)) statuses)

let func_statuses ~baseline ~target name =
  match Surface.find_func target name with
  | None -> (
      (* not in DWARF; could still be a raw symbol (syscall stubs) *)
      [ St_absent ])
  | Some fe ->
      let acc = ref [] in
      (match Func_status.inline_status fe with
      | Func_status.Fully_inlined -> acc := St_full_inline :: !acc
      | Func_status.Selectively_inlined -> acc := St_selective_inline :: !acc
      | Func_status.Not_inlined -> ());
      if Func_status.transforms fe <> [] && fe.Surface.fe_symbols = [] then
        acc := St_transformed :: !acc;
      (match Func_status.name_status fe with
      | Func_status.Duplication -> acc := St_duplicated :: !acc
      | Func_status.Static_static_collision | Func_status.Static_global_collision ->
          acc := St_collision :: !acc
      | Func_status.Unique_global | Func_status.Unique_static -> ());
      (match Surface.find_func baseline name with
      | Some base_fe ->
          let changes =
            Diff.func_changes
              (Surface.representative_proto base_fe)
              (Surface.representative_proto fe)
          in
          if changes <> [] then
            acc := St_changed (List.map Diff.describe_func_change changes) :: !acc
      | None -> ());
      if !acc = [] then [ St_ok ] else List.rev !acc

let statuses ~baseline ~target dep =
  match dep with
  | Depset.Dep_func name -> func_statuses ~baseline ~target name
  | Depset.Dep_struct name -> (
      match Surface.find_struct target name with
      | None -> [ St_absent ]
      | Some _ -> [ St_ok ])
  | Depset.Dep_field (sname, fname) -> (
      match Surface.find_struct target sname with
      | None -> [ St_absent ]
      | Some _ -> (
          match Surface.find_field target sname fname with
          | None -> [ St_absent ]
          | Some f -> (
              match Surface.find_field baseline sname fname with
              | Some base_f when not (Ctype.equal base_f.Decl.ftype f.Decl.ftype) ->
                  [
                    St_changed
                      [
                        Printf.sprintf "type %s -> %s"
                          (Ctype.to_string base_f.Decl.ftype)
                          (Ctype.to_string f.Decl.ftype);
                      ];
                  ]
              | _ -> [ St_ok ])))
  | Depset.Dep_tracepoint name -> (
      match Surface.find_tracepoint target name with
      | None -> [ St_absent ]
      | Some tp -> (
          match Surface.find_tracepoint baseline name with
          | None -> [ St_ok ]
          | Some base_tp -> (
              match Diff.(tp_changes Across_versions base_tp tp) with
              | exception _ -> [ St_ok ]
              | [] -> [ St_ok ]
              | cs -> [ St_changed (List.map Diff.describe_tp_change cs) ])))
  | Depset.Dep_syscall name ->
      if Surface.has_syscall target name then [ St_ok ] else [ St_absent ]

type consequence =
  | Compilation_error
  | Relocation_error
  | Attachment_error
  | Stray_read
  | Missing_invocation

type implication = Explicit_error | Incorrect_result | Incomplete_result

let consequence_of dep status =
  match dep, status with
  | _, St_ok -> []
  | Depset.Dep_func _, St_absent -> [ Attachment_error ]
  | Depset.Dep_func _, St_full_inline -> [ Attachment_error ]
  | Depset.Dep_func _, St_transformed -> [ Attachment_error ]
  | Depset.Dep_func _, St_changed _ -> [ Stray_read ]
  | Depset.Dep_func _, St_selective_inline -> [ Missing_invocation ]
  | Depset.Dep_func _, St_duplicated -> [ Missing_invocation ]
  | Depset.Dep_func _, St_collision -> [ Stray_read ]
  | (Depset.Dep_struct _ | Depset.Dep_field _), St_absent ->
      [ Compilation_error; Relocation_error ]
  | (Depset.Dep_struct _ | Depset.Dep_field _), St_changed _ -> [ Stray_read ]
  | Depset.Dep_tracepoint _, St_absent -> [ Attachment_error ]
  | Depset.Dep_tracepoint _, St_changed _ -> [ Stray_read ]
  | Depset.Dep_syscall _, St_absent -> [ Attachment_error ]
  | Depset.Dep_syscall _, St_changed _ -> []
  | _, (St_full_inline | St_selective_inline | St_transformed | St_duplicated | St_collision) ->
      []

let implication_of = function
  | Compilation_error | Relocation_error | Attachment_error -> Explicit_error
  | Stray_read -> Incorrect_result
  | Missing_invocation -> Incomplete_result

let consequence_to_string = function
  | Compilation_error -> "Compilation Error"
  | Relocation_error -> "Relocation Error"
  | Attachment_error -> "Attachment Error"
  | Stray_read -> "Stray Read"
  | Missing_invocation -> "Missing Invocation"

let implication_to_string = function
  | Explicit_error -> "Explicit Error (before execution)"
  | Incorrect_result -> "Incorrect Result (might be detectable)"
  | Incomplete_result -> "Incomplete Result (difficult to detect)"

type cell = { c_image : Version.t * Config.t; c_statuses : status list; c_degraded : bool }
type dep_row = { r_dep : Depset.dep; r_cells : cell list }

type matrix = {
  m_obj_name : string;
  m_baseline : Version.t * Config.t;
  m_rows : dep_row list;
}

let matrix_of_surfaces ~baseline:(baseline_image, base_surface) ~targets obj =
  let deps = Depset.of_obj obj in
  let rows =
    List.map
      (fun dep ->
        {
          r_dep = dep;
          r_cells =
            List.map
              (fun (image, target) ->
                Ds_trace.Trace.span ~name:"report.cell"
                  ~attrs:
                    [
                      ("dep", Depset.dep_to_string dep);
                      ("image", Version.to_string (fst image));
                    ]
                  (fun () ->
                    {
                      c_image = image;
                      c_statuses = statuses ~baseline:base_surface ~target dep;
                      c_degraded = Surface.degraded target;
                    }))
              targets;
        })
      deps
  in
  { m_obj_name = obj.Ds_bpf.Obj.o_name; m_baseline = baseline_image; m_rows = rows }

let matrix dataset ~images ~baseline obj =
  let surface (v, cfg) = Dataset.surface dataset v cfg in
  matrix_of_surfaces
    ~baseline:(baseline, surface baseline)
    ~targets:(List.map (fun img -> (img, surface img)) images)
    obj

let image_label (v, cfg) =
  if Config.equal cfg Config.x86_generic then Version.to_string v
  else Printf.sprintf "%s %s" (Version.to_string v) (Config.to_string cfg)

let render_matrix m =
  match m.m_rows with
  | [] -> Printf.sprintf "%s: no dependencies\n" m.m_obj_name
  | first :: _ ->
      let headers =
        ("image", Ds_util.Texttable.L)
        :: List.map
             (fun row ->
               let name =
                 match row.r_dep with
                 | Depset.Dep_func f -> "fn " ^ f
                 | Depset.Dep_struct s -> "st " ^ s
                 | Depset.Dep_field (s, f) -> s ^ "::" ^ f
                 | Depset.Dep_tracepoint t -> "tp " ^ t
                 | Depset.Dep_syscall s -> "sc " ^ s
               in
               (name, Ds_util.Texttable.L))
             m.m_rows
      in
      let any_degraded =
        List.exists (fun row -> List.exists (fun c -> c.c_degraded) row.r_cells) m.m_rows
      in
      let table =
        Ds_util.Texttable.create
          ~title:
            (Printf.sprintf
               "%s (built against %s)  legend: . ok | x absent | C changed | F full inline | S \
                selective | T transformed | D duplicated | N collision%s"
               m.m_obj_name (image_label m.m_baseline)
               (if any_degraded then " | ~ degraded image" else ""))
          headers
      in
      List.iteri
        (fun i _ ->
          let img = (List.nth first.r_cells i).c_image in
          let degraded =
            List.exists (fun row -> (List.nth row.r_cells i).c_degraded) m.m_rows
          in
          Ds_util.Texttable.row table
            ((if degraded then "~ " ^ image_label img else image_label img)
            :: List.map
                 (fun row -> status_letter (worst (List.nth row.r_cells i).c_statuses))
                 m.m_rows))
        first.r_cells;
      Ds_util.Texttable.render table

type mismatch_summary = {
  ms_total : Depset.totals;
  ms_absent : Depset.totals;
  ms_changed : Depset.totals;
  ms_full_inline : int;
  ms_selective_inline : int;
  ms_transformed : int;
  ms_duplicated : int;
}

let zero = Depset.{ n_funcs = 0; n_structs = 0; n_fields = 0; n_tracepoints = 0; n_syscalls = 0 }

let bump_totals (t : Depset.totals) dep =
  match dep with
  | Depset.Dep_func _ -> { t with Depset.n_funcs = t.Depset.n_funcs + 1 }
  | Depset.Dep_struct _ -> { t with Depset.n_structs = t.Depset.n_structs + 1 }
  | Depset.Dep_field _ -> { t with Depset.n_fields = t.Depset.n_fields + 1 }
  | Depset.Dep_tracepoint _ -> { t with Depset.n_tracepoints = t.Depset.n_tracepoints + 1 }
  | Depset.Dep_syscall _ -> { t with Depset.n_syscalls = t.Depset.n_syscalls + 1 }

let summarize m =
  List.fold_left
    (fun acc row ->
      let all = List.concat_map (fun c -> c.c_statuses) row.r_cells in
      let has p = List.exists p all in
      let acc = { acc with ms_total = bump_totals acc.ms_total row.r_dep } in
      let acc =
        if has (function St_absent -> true | _ -> false) then
          { acc with ms_absent = bump_totals acc.ms_absent row.r_dep }
        else acc
      in
      let acc =
        if has (function St_changed _ -> true | _ -> false) then
          { acc with ms_changed = bump_totals acc.ms_changed row.r_dep }
        else acc
      in
      {
        acc with
        ms_full_inline =
          (acc.ms_full_inline + if has (function St_full_inline -> true | _ -> false) then 1 else 0);
        ms_selective_inline =
          (acc.ms_selective_inline
          + if has (function St_selective_inline -> true | _ -> false) then 1 else 0);
        ms_transformed =
          (acc.ms_transformed + if has (function St_transformed -> true | _ -> false) then 1 else 0);
        ms_duplicated =
          (acc.ms_duplicated + if has (function St_duplicated -> true | _ -> false) then 1 else 0);
      })
    {
      ms_total = zero;
      ms_absent = zero;
      ms_changed = zero;
      ms_full_inline = 0;
      ms_selective_inline = 0;
      ms_transformed = 0;
      ms_duplicated = 0;
    }
    m.m_rows

let clean s =
  s.ms_absent = zero && s.ms_changed = zero && s.ms_full_inline = 0
  && s.ms_selective_inline = 0 && s.ms_transformed = 0 && s.ms_duplicated = 0

let mismatched_deps m =
  List.filter_map
    (fun row ->
      match worst (List.concat_map (fun c -> c.c_statuses) row.r_cells) with
      | St_ok -> None
      | st -> Some (row.r_dep, st))
    m.m_rows
