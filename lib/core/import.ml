open Ds_util
open Ds_ctypes
open Ds_ksrc

exception Bad_dataset of string

let fail msg = raise (Bad_dataset msg)
let str_field name j = match Json.member name j with Some (Json.String s) -> s | _ -> fail ("missing string " ^ name)
let int_field name j = match Json.member name j with Some (Json.Int i) -> i | _ -> fail ("missing int " ^ name)
let bool_field name j = match Json.member name j with Some (Json.Bool b) -> b | _ -> fail ("missing bool " ^ name)
let list_field name j =
  match Json.member name j with Some (Json.List l) -> l | _ -> fail ("missing list " ^ name)

(* Byte widths of the base types Export can emit, recovered from their C
   names (the JSON does not carry widths, matching the appendix). *)
let int_of_name name =
  let bits, signed =
    match name with
    | "char" -> (8, true)
    | "unsigned char" | "_Bool" -> (8, false)
    | "short int" -> (16, true)
    | "short unsigned int" -> (16, false)
    | "int" -> (32, true)
    | "unsigned int" -> (32, false)
    | "long int" | "long long int" -> (64, true)
    | "long unsigned int" | "long long unsigned int" -> (64, false)
    | _ -> (32, true)
  in
  Ctype.Int { name; bits; signed = signed && name <> "_Bool" }

let rec ctype_of_json j =
  match str_field "kind" j with
  | "VOID" -> Ctype.Void
  | "INT" -> int_of_name (str_field "name" j)
  | "FLOAT" ->
      let name = str_field "name" j in
      Ctype.Float { name; bits = (if name = "float" then 32 else 64) }
  | "PTR" -> Ctype.Ptr (inner j)
  | "ARRAY" -> Ctype.Array (inner j, int_field "nr_elems" j)
  | "STRUCT" -> Ctype.Struct_ref (str_field "name" j)
  | "UNION" -> Ctype.Union_ref (str_field "name" j)
  | "ENUM" -> Ctype.Enum_ref (str_field "name" j)
  | "TYPEDEF" -> Ctype.Typedef_ref (str_field "name" j)
  | "CONST" -> Ctype.Const (inner j)
  | "VOLATILE" -> Ctype.Volatile (inner j)
  | "FUNC_PROTO" -> Ctype.Func_proto (proto_of_json j)
  | k -> fail ("unknown type kind " ^ k)

and inner j =
  match Json.member "type" j with Some t -> ctype_of_json t | None -> fail "missing type"

and proto_of_json j =
  (* accept both a FUNC wrapper and a bare FUNC_PROTO *)
  let j =
    match str_field "kind" j with
    | "FUNC" -> (
        match Json.member "type" j with Some t -> t | None -> fail "FUNC without type")
    | _ -> j
  in
  match str_field "kind" j with
  | "FUNC_PROTO" ->
      let params =
        List.map
          (fun p -> Ctype.{ pname = str_field "name" p; ptype = inner p })
          (list_field "params" j)
      in
      let ret =
        match Json.member "ret_type" j with
        | Some r -> ctype_of_json r
        | None -> fail "missing ret_type"
      in
      { Ctype.ret; params; variadic = false }
  | k -> fail ("expected FUNC_PROTO, got " ^ k)

let struct_of_json j =
  let skind = match str_field "kind" j with "UNION" -> `Union | _ -> `Struct in
  Decl.
    {
      sname = str_field "name" j;
      skind;
      byte_size = int_field "size" j;
      fields =
        List.map
          (fun m ->
            {
              fname = str_field "name" m;
              ftype = inner m;
              bits_offset = int_field "bits_offset" m;
            })
          (list_field "members" j);
    }

let split_loc loc =
  match String.rindex_opt loc ':' with
  | Some i ->
      let file = String.sub loc 0 i in
      let line =
        match int_of_string_opt (String.sub loc (i + 1) (String.length loc - i - 1)) with
        | Some l -> l
        | None -> fail ("bad loc " ^ loc)
      in
      (file, line)
  | None -> fail ("bad loc " ^ loc)

let func_entry_of_json j : Surface.func_entry =
  let name = str_field "name" j in
  let proto = proto_of_json (match Json.member "decl" j with Some d -> d | None -> fail "missing decl") in
  let decls =
    List.map
      (fun inst ->
        let file, line = split_loc (str_field "loc" inst) in
        Surface.
          {
            di_tu = str_field "file" inst;
            di_file = file;
            di_line = line;
            di_proto = proto;
            di_external = bool_field "external" inst;
            di_declared_inline =
              (match str_field "inline" inst with
              | "declared, inlined" | "declared, not inlined" -> true
              | _ -> false);
            di_low_pc =
              (match Json.member "addr" inst with
              | Some (Json.Int a) -> Some (Int64.of_int a)
              | _ -> None);
          })
      (list_field "funcs" j)
  in
  (* inline sites are recorded as "tu:caller" strings on the instances *)
  let inline_sites =
    List.concat_map
      (fun inst ->
        List.filter_map
          (function
            | Json.String s -> (
                match Ds_util.Strutil.cut ~on:':' s with
                | Some (tu, caller) ->
                    Some Surface.{ is_tu = tu; is_caller = caller; is_pc = 0L }
                | None -> None)
            | _ -> None)
          (list_field "caller_inline" inst))
      (list_field "funcs" j)
  in
  let callers =
    List.sort_uniq compare
      (List.concat_map
         (fun inst ->
           List.filter_map
             (function Json.String s -> Some s | _ -> None)
             (list_field "caller_func" inst))
         (list_field "funcs" j))
  in
  let symbols =
    List.map
      (fun sym ->
        Ds_elf.Elf.
          {
            sym_name = str_field "name" sym;
            sym_value = Int64.of_int (int_field "addr" sym);
            sym_size = int_field "size" sym;
            sym_bind =
              (match str_field "bind" sym with
              | "STB_GLOBAL" -> Ds_elf.Elf.Global
              | "STB_WEAK" -> Ds_elf.Elf.Weak
              | _ -> Ds_elf.Elf.Local);
            sym_section = str_field "section" sym;
          })
      (list_field "symbols" j)
  in
  let exact, suffixed =
    List.partition (fun (s : Ds_elf.Elf.symbol) -> s.sym_name = name) symbols
  in
  {
    fe_name = name;
    fe_decls = decls;
    fe_symbols = exact;
    fe_suffixed = suffixed;
    fe_inline_sites = inline_sites;
    fe_callers = callers;
  }

let tp_of_json j : Surface.tp_entry =
  {
    te_name = str_field "event_name" j;
    te_class = str_field "class_name" j;
    te_event_struct = Option.map struct_of_json (Json.member "struct" j);
    te_func =
      Option.map
        (fun d -> Ds_ctypes.Decl.{ fname = str_field "name" d; proto = proto_of_json d })
        (Json.member "func" j);
  }

let surface_of_json j =
  let version =
    match String.split_on_char '.' (str_field "version" j) with
    | [ major; minor ] -> (
        match
          int_of_string_opt (String.sub major 1 (String.length major - 1)),
          int_of_string_opt minor
        with
        | Some a, Some b -> Version.v a b
        | _ -> fail "bad version")
    | _ -> fail "bad version"
  in
  let arch =
    let a = str_field "arch" j in
    match List.find_opt (fun x -> Config.arch_to_string x = a) Config.arches with
    | Some x -> x
    | None -> fail ("bad arch " ^ a)
  in
  let flavor =
    let f = str_field "flavor" j in
    match List.find_opt (fun x -> Config.flavor_to_string x = f) Config.flavors with
    | Some x -> x
    | None -> fail ("bad flavor " ^ f)
  in
  let gcc =
    match String.split_on_char '.' (str_field "gcc" j) with
    | [ a; b ] -> (
        match int_of_string_opt a, int_of_string_opt b with
        | Some x, Some y -> (x, y)
        | _ -> fail "bad gcc")
    | _ -> fail "bad gcc"
  in
  let obj_field name =
    match Json.member name j with Some (Json.Obj kvs) -> kvs | _ -> fail ("missing object " ^ name)
  in
  let funcs = List.map (fun (_, v) -> func_entry_of_json v) (obj_field "funcs") in
  let structs = List.map (fun (_, v) -> struct_of_json v) (obj_field "structs") in
  let tracepoints = List.map (fun (_, v) -> tp_of_json v) (obj_field "tracepoints") in
  let syscalls =
    List.map
      (function Json.String s -> s | _ -> fail "bad syscall entry")
      (list_field "syscalls" j)
  in
  Surface.v ~version ~arch ~flavor ~gcc ~funcs ~structs ~tracepoints ~syscalls

let surface_of_string s =
  match Json.of_string s with
  (* accept both the bare dataset document and the v1 API envelope *)
  | j -> surface_of_json (Api.data j)
  | exception Json.Parse_error m -> fail ("JSON: " ^ m)
