(** The study's image matrix and its extracted surfaces, built once and
    memoized: 17 x86/generic versions plus 4 architectures and 4 flavors
    at v5.4 — 25 images (paper §3.2). *)

open Ds_ksrc

type t

val study_images : (Version.t * Config.t) list
(** All 25 (version, config) pairs. *)

val fig4_images : (Version.t * Config.t) list
(** The 21 images of Figure 4: 17 x86 versions + 4 arches at v5.4. *)

val build : seed:int64 -> ?store:Ds_store.Store.t -> Calibration.scale -> t
(** Generate the kernel history; images and surfaces materialize lazily
    on first access. With [store], images and surfaces additionally get a
    persistent on-disk tier under the in-memory memo tables: computed
    artifacts are written through, and later processes (same seed, scale
    and codec version) load them instead of recompiling. *)

val seed : t -> int64

val scale : t -> Calibration.scale

val store : t -> Ds_store.Store.t option

val compile_count : t -> int
(** How many kernel models this process actually compiled (cache hits
    don't compile); the bench asserts this is 0 on a warm run. *)

val cache_key : t -> label:string -> string list -> string
(** [cache_key t ~label parts]: a store key binding the codec version,
    evolution seed, scale record, [label] and [parts] — everything the
    artifact's content is a function of. Shaped [label ^ "-" ^ digest]. *)

val source : t -> Version.t -> Source.t
(** O(1): served from a [Hashtbl] index built over the history at
    construction time. *)

val image : t -> Version.t -> Config.t -> Ds_elf.Elf.t
val model : t -> Version.t -> Config.t -> Ds_kcc.Compile.model
val vmlinux : t -> Version.t -> Config.t -> Ds_bpf.Vmlinux.t
val surface : t -> Version.t -> Config.t -> Surface.t
val x86_series : t -> (Version.t * Surface.t) list
(** The 17 x86/generic surfaces in release order. *)

val warm : t -> unit
(** Force every study image/surface sequentially (useful before timing
    runs). *)

val warm_list : ?pool:Ds_util.Par.pool -> t -> (Version.t * Config.t) list -> unit
(** Force the given images, through the pool when one is supplied. Each
    image's compile → emit → ELF-roundtrip → parse → surface chain is
    independent, so this fans out near-linearly.

    All accessors above are safe to call from multiple domains: the memo
    tables guarantee each (version, config) model/image/vmlinux/surface
    is computed exactly once. *)

val warm_par : ?pool:Ds_util.Par.pool -> t -> unit
(** {!warm_list} over {!study_images}; without [pool], a temporary pool
    sized by [DEPSURF_JOBS] (default: all cores) is created and shut
    down. *)
