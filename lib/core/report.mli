(** Dependency-mismatch reports (paper §3.1, Figure 4, Tables 1–2): for
    each dependency of an eBPF program and each kernel image, the mismatch
    statuses, their consequences, and their user-visible implications. *)

open Ds_ksrc

type status =
  | St_ok
  | St_absent
  | St_changed of string list  (** human-readable reasons *)
  | St_full_inline
  | St_selective_inline
  | St_transformed
  | St_duplicated
  | St_collision

val status_letter : status -> string
(** Figure 4 cell legend: ["."] ok, ["x"] absent, ["C"] changed,
    ["F"]/["S"] fully/selectively inlined, ["T"] transformed,
    ["D"] duplicated, ["N"] name collision. *)

val statuses : baseline:Surface.t -> target:Surface.t -> Depset.dep -> status list
(** Every mismatch the dependency would hit on [target], where [baseline]
    is the surface the program was developed against. [\[\]] never occurs:
    an unaffected dependency reports [\[St_ok\]]. *)

val worst : status list -> status
(** The dominant status for a one-letter cell (absence beats inline beats
    change ...). *)

(** {2 Consequences and implications (Tables 1 and 2)} *)

type consequence =
  | Compilation_error
  | Relocation_error
  | Attachment_error
  | Stray_read
  | Missing_invocation

type implication = Explicit_error | Incorrect_result | Incomplete_result

val consequence_of : Depset.dep -> status -> consequence list
val implication_of : consequence -> implication
val consequence_to_string : consequence -> string
val implication_to_string : implication -> string

(** {2 Program-level reports} *)

type cell = {
  c_image : Version.t * Config.t;
  c_statuses : status list;
  c_degraded : bool;  (** the target surface was extracted leniently and
                          lost something — statuses may be incomplete *)
}

type dep_row = { r_dep : Depset.dep; r_cells : cell list }

type matrix = {
  m_obj_name : string;
  m_baseline : Version.t * Config.t;
  m_rows : dep_row list;
}

val matrix :
  Dataset.t ->
  images:(Version.t * Config.t) list ->
  baseline:Version.t * Config.t ->
  Ds_bpf.Obj.t ->
  matrix

val matrix_of_surfaces :
  baseline:(Version.t * Config.t) * Surface.t ->
  targets:((Version.t * Config.t) * Surface.t) list ->
  Ds_bpf.Obj.t ->
  matrix
(** Same report over already-extracted surfaces — the path for targets
    that do not come from a {!Dataset.t} (on-disk images, possibly
    degraded, served by [depsurf serve] or [analyze --images]). Each
    cell's [c_degraded] reflects the target surface's health, so a
    leniently-extracted image carries its [~] marker into the render. *)

val render_matrix : matrix -> string
(** Figure 4-style text rendering: dependencies as columns, images as
    rows. *)

type mismatch_summary = {
  ms_total : Depset.totals;  (** dependency-set sizes *)
  ms_absent : Depset.totals;  (** deps absent on ≥1 image *)
  ms_changed : Depset.totals;  (** deps changed on ≥1 image *)
  ms_full_inline : int;
  ms_selective_inline : int;
  ms_transformed : int;
  ms_duplicated : int;
}

val summarize : matrix -> mismatch_summary
(** The per-program row of Table 7. *)

val clean : mismatch_summary -> bool
(** No mismatch of any kind (the blue rows of Table 7). *)

val mismatched_deps : matrix -> (Depset.dep * status) list
(** The rows whose dominant status across every image is not [St_ok],
    with that dominant status — the per-program feed for blast-radius
    discovery ("which dependencies have a known mismatch somewhere"),
    in the matrix's row order. *)
