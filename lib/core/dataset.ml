open Ds_ksrc
module Par = Ds_util.Par
module Store = Ds_store.Store

type t = {
  seed : int64;
  scale : Calibration.scale;
  history : (Version.t * Source.t) list;
  sources : (Version.t, Source.t) Hashtbl.t;
      (* index over [history]; read-only after [build], so safe to share
         across domains without a lock *)
  store : Store.t option;
      (* persistent tier under the in-memory memo tables; [None] disables
         on-disk caching entirely *)
  models : (string, Ds_kcc.Compile.model) Par.Memo.t;
  images : (string, Ds_elf.Elf.t) Par.Memo.t;
  vmlinuxes : (string, Ds_bpf.Vmlinux.t) Par.Memo.t;
  surfaces : (string, Surface.t) Par.Memo.t;
}

let study_images =
  List.map (fun v -> (v, Config.x86_generic)) Version.all
  @ List.map
      (fun cfg -> (Version.v 5 4, cfg))
      (List.filter (fun c -> not (Config.equal c Config.x86_generic)) Config.study_configs)

let fig4_images =
  List.map (fun v -> (v, Config.x86_generic)) Version.all
  @ List.map
      (fun arch -> (Version.v 5 4, Config.{ arch; flavor = Generic }))
      [ Config.Arm64; Config.Arm32; Config.Ppc; Config.Riscv ]

let build ~seed ?store scale =
  let history = Evolution.build_history ~seed scale in
  let sources = Hashtbl.create (List.length history) in
  List.iter (fun (v, src) -> Hashtbl.replace sources v src) history;
  {
    seed;
    scale;
    history;
    sources;
    store;
    models = Par.Memo.create 32;
    images = Par.Memo.create 32;
    vmlinuxes = Par.Memo.create 32;
    surfaces = Par.Memo.create 32;
  }

let seed t = t.seed
let scale t = t.scale
let store t = t.store

let compile_count t = Par.Memo.length t.models

let cache_key t ~label parts =
  let h = Store.Hash.create () in
  Store.Hash.int h Codec_base.version;
  Store.Hash.int64 h t.seed;
  Store.Hash.float h t.scale.Calibration.sc_funcs;
  Store.Hash.float h t.scale.Calibration.sc_structs;
  Store.Hash.float h t.scale.Calibration.sc_tracepoints;
  Store.Hash.float h t.scale.Calibration.sc_syscalls;
  Store.Hash.string h label;
  List.iter (Store.Hash.string h) parts;
  label ^ "-" ^ Store.Hash.hex h

let source t v =
  match Hashtbl.find_opt t.sources v with
  | Some src -> src
  | None -> invalid_arg ("Dataset.source: unknown version " ^ Version.to_string v)

let key v cfg = Version.to_string v ^ "/" ^ Config.to_string cfg

let model t v cfg =
  Par.Memo.find_or_compute t.models (key v cfg) (fun () ->
      Ds_kcc.Compile.compile (source t v) cfg)

let image t v cfg =
  Par.Memo.find_or_compute t.images (key v cfg) (fun () ->
      Store.memo t.store ~ns:"image"
        ~key:(cache_key t ~label:(key v cfg) [])
        ~encode:Ds_elf.Elf.write
        ~decode:(fun s -> Ds_util.Diag.ok (Ds_elf.Elf.read s))
        (fun () -> Ds_kcc.Emit.emit (model t v cfg)))

let vmlinux t v cfg =
  Par.Memo.find_or_compute t.vmlinuxes (key v cfg) (fun () ->
      (* Serialize and re-parse: every analysis works on the bytes a real
         image would provide, not on in-memory structures. *)
      Ds_bpf.Vmlinux.load
        (Ds_util.Diag.ok (Ds_elf.Elf.read (Ds_elf.Elf.write (image t v cfg)))))

let surface t v cfg =
  Par.Memo.find_or_compute t.surfaces (key v cfg) (fun () ->
      Ds_trace.Trace.span ~name:"dataset.surface" ~attrs:[ ("image", key v cfg) ] (fun () ->
          Store.memo t.store ~ns:"surface"
            ~cache_if:(fun s -> not (Surface.degraded s))
            ~key:(cache_key t ~label:(key v cfg) [])
            ~encode:Codec_base.encode_surface ~decode:Codec_base.decode_surface
            (fun () -> Surface.of_vmlinux (vmlinux t v cfg))))

let x86_series t = List.map (fun v -> (v, surface t v Config.x86_generic)) Version.all

let warm t = List.iter (fun (v, cfg) -> ignore (surface t v cfg)) study_images

let warm_list ?pool t imgs =
  match pool with
  | None -> List.iter (fun (v, cfg) -> ignore (surface t v cfg)) imgs
  | Some p -> ignore (Par.map_list_chunked p (fun (v, cfg) -> ignore (surface t v cfg)) imgs)

let warm_par ?pool t =
  match pool with
  | Some _ -> warm_list ?pool t study_images
  | None -> Par.run (fun p -> warm_list ~pool:p t study_images)
