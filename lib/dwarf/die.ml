open Ds_util

module Dw = struct
  let tag_array_type = 0x01
  let tag_enumeration_type = 0x04
  let tag_formal_parameter = 0x05
  let tag_member = 0x0d
  let tag_pointer_type = 0x0f
  let tag_compile_unit = 0x11
  let tag_structure_type = 0x13
  let tag_subroutine_type = 0x15
  let tag_typedef = 0x16
  let tag_union_type = 0x17
  let tag_base_type = 0x24
  let tag_const_type = 0x26
  let tag_enumerator = 0x28
  let tag_subprogram = 0x2e
  let tag_variable = 0x34
  let tag_volatile_type = 0x35
  let tag_subrange_type = 0x21
  let tag_inlined_subroutine = 0x1d
  let tag_call_site = 0x48
  let tag_unspecified_parameters = 0x18

  let at_name = 0x03
  let at_byte_size = 0x0b
  let at_encoding = 0x3e
  let at_type = 0x49
  let at_low_pc = 0x11
  let at_high_pc = 0x12
  let at_decl_file = 0x3a
  let at_decl_line = 0x3b
  let at_declaration = 0x3c
  let at_inline = 0x20
  let at_external = 0x3f
  let at_abstract_origin = 0x31
  let at_data_member_location = 0x38
  let at_upper_bound = 0x2f
  let at_prototyped = 0x27
  let at_const_value = 0x1c
  let at_call_file = 0x58
  let at_call_line = 0x59
  let at_call_origin = 0x7f

  let inl_not_inlined = 0
  let inl_inlined = 1
  let inl_declared_not_inlined = 2
  let inl_declared_inlined = 3

  let enc_signed = 0x05
  let enc_unsigned = 0x07
  let enc_boolean = 0x02
  let enc_signed_char = 0x06
  let enc_unsigned_char = 0x08
  let enc_float = 0x04
end

type value = String of string | Int of int | Addr of int64 | Flag | Ref of int
type die = { tag : int; attrs : (int * value) list; children : int list }
type t = { dies : die array; root_ids : int list }

exception Bad_dwarf of string

module Builder = struct
  type arena = t

  type t = {
    mutable dies : die array;
    mutable len : int;
    mutable roots : int list; (* reversed *)
  }

  let dummy = { tag = 0; attrs = []; children = [] }
  let create () = { dies = Array.make 256 dummy; len = 0; roots = [] }

  let add t ~tag ~attrs ~children =
    List.iter
      (fun c -> if c < 0 || c >= t.len then invalid_arg "Die.Builder.add: bad child id")
      children;
    if t.len = Array.length t.dies then begin
      let bigger = Array.make (2 * t.len) dummy in
      Array.blit t.dies 0 bigger 0 t.len;
      t.dies <- bigger
    end;
    t.dies.(t.len) <- { tag; attrs; children };
    t.len <- t.len + 1;
    t.len - 1

  let add_root t id =
    if id < 0 || id >= t.len then invalid_arg "Die.Builder.add_root: bad id";
    t.roots <- id :: t.roots

  let finish t = { dies = Array.sub t.dies 0 t.len; root_ids = List.rev t.roots }
end

let get t id =
  if id < 0 || id >= Array.length t.dies then raise (Bad_dwarf (Printf.sprintf "bad die id %d" id));
  t.dies.(id)

let roots t = t.root_ids
let size t = Array.length t.dies
let attr die at = List.assoc_opt at die.attrs
let attr_string die at = match attr die at with Some (String s) -> Some s | _ -> None
let attr_int die at = match attr die at with Some (Int i) -> Some i | _ -> None
let attr_addr die at = match attr die at with Some (Addr a) -> Some a | _ -> None
let attr_ref die at = match attr die at with Some (Ref r) -> Some r | _ -> None
let has_flag die at = match attr die at with Some Flag -> true | _ -> false

(* Forms used per value constructor. *)
let form_string = 0x08
let form_udata = 0x0f
let form_data8 = 0x07
let form_flag_present = 0x19
let form_ref4 = 0x13

let form_of_value = function
  | String _ -> form_string
  | Int _ -> form_udata
  | Addr _ -> form_data8
  | Flag -> form_flag_present
  | Ref _ -> form_ref4

(* Abbreviation shapes. *)
type shape = { s_tag : int; s_children : bool; s_pairs : (int * int) list }

let shape_of die =
  {
    s_tag = die.tag;
    s_children = die.children <> [];
    s_pairs = List.map (fun (at, v) -> (at, form_of_value v)) die.attrs;
  }

let uleb_size v =
  let rec go v n = if v < 128 then n else go (v lsr 7) (n + 1) in
  go (max v 0) 1

let unit_header_size = 11 (* u32 length + u16 version + u32 abbrev_off + u8 addr_size *)

let encode t =
  (* Pass 0: collect abbreviations. *)
  let shapes : (shape, int) Hashtbl.t = Hashtbl.create 64 in
  let shape_list = ref [] in
  Array.iter
    (fun die ->
      let s = shape_of die in
      if not (Hashtbl.mem shapes s) then begin
        let code = Hashtbl.length shapes + 1 in
        Hashtbl.add shapes s code;
        shape_list := s :: !shape_list
      end)
    t.dies;
  (* Pass 1: compute the encoded size of each DIE body (without children)
     and then the section offset of every DIE in emission order. *)
  let die_body_size die =
    let code = Hashtbl.find shapes (shape_of die) in
    uleb_size code
    + List.fold_left
        (fun acc (_, v) ->
          acc
          +
          match v with
          | String s -> String.length s + 1
          | Int i -> uleb_size i
          | Addr _ -> 8
          | Flag -> 0
          | Ref _ -> 4)
        0 die.attrs
  in
  let offsets = Array.make (Array.length t.dies) 0 in
  let pos = ref 0 in
  let rec layout id =
    let die = get t id in
    offsets.(id) <- !pos;
    pos := !pos + die_body_size die;
    if die.children <> [] then begin
      List.iter layout die.children;
      incr pos (* null terminator *)
    end
  in
  let unit_sizes =
    List.map
      (fun root ->
        let start = !pos in
        pos := !pos + unit_header_size;
        layout root;
        !pos - start)
      t.root_ids
  in
  ignore unit_sizes;
  (* Pass 2: emit. *)
  let info = Bytesio.Writer.create () in
  let rec emit id =
    let die = get t id in
    let code = Hashtbl.find shapes (shape_of die) in
    Bytesio.Writer.uleb128 info code;
    List.iter
      (fun (_, v) ->
        match v with
        | String s -> Bytesio.Writer.cstring info s
        | Int i -> Bytesio.Writer.uleb128 info i
        | Addr a -> Bytesio.Writer.u64 info a
        | Flag -> ()
        | Ref r -> Bytesio.Writer.u32 info offsets.(r))
      die.attrs;
    if die.children <> [] then begin
      List.iter emit die.children;
      Bytesio.Writer.u8 info 0
    end
  in
  List.iter
    (fun root ->
      let start = Bytesio.Writer.pos info in
      (* Compute this unit's content length: from after the length field to
         the end of the unit. We know the total from the layout pass via the
         offset of the next unit; recompute by a local layout. *)
      let unit_end = ref (start + unit_header_size) in
      let rec measure id =
        let die = get t id in
        unit_end := !unit_end + die_body_size die;
        if die.children <> [] then begin
          List.iter measure die.children;
          incr unit_end
        end
      in
      measure root;
      Bytesio.Writer.u32 info (!unit_end - start - 4);
      Bytesio.Writer.u16 info 4 (* DWARF version *);
      Bytesio.Writer.u32 info 0 (* abbrev offset: single table *);
      Bytesio.Writer.u8 info 8 (* address size *);
      emit root)
    t.root_ids;
  let abbrev = Bytesio.Writer.create () in
  List.iter
    (fun s ->
      let code = Hashtbl.find shapes s in
      Bytesio.Writer.uleb128 abbrev code;
      Bytesio.Writer.uleb128 abbrev s.s_tag;
      Bytesio.Writer.u8 abbrev (if s.s_children then 1 else 0);
      List.iter
        (fun (at, form) ->
          Bytesio.Writer.uleb128 abbrev at;
          Bytesio.Writer.uleb128 abbrev form)
        s.s_pairs;
      Bytesio.Writer.uleb128 abbrev 0;
      Bytesio.Writer.uleb128 abbrev 0)
    (List.rev !shape_list);
  Bytesio.Writer.uleb128 abbrev 0;
  (Bytesio.Writer.contents info, Bytesio.Writer.contents abbrev)

type decode_result = { dw_arena : t; dw_diags : Ds_util.Diag.t list }

(* Lenient parsing: a failure inside one compile unit skips just that
   unit (the unit header's length field locates the next unit boundary,
   which is what real consumers resync on), and failures in the shared
   abbrev table or in the reference-remap pass degrade rather than
   abort. *)
exception Unit_fail of string

exception Stop_units

let decode_impl ~strict ~info ~abbrev =
  let collector = Diag.Collector.create () in
  let diag ?offset severity msg =
    if strict then raise (Bad_dwarf msg)
    else Diag.Collector.emit collector (Diag.v ?offset severity ~component:"dwarf" msg)
  in
  (* Abbreviation table. *)
  let shapes : (int, shape) Hashtbl.t = Hashtbl.create 64 in
  let ar = Bytesio.Reader.of_string abbrev in
  (try
     let rec go () =
       let code = Bytesio.Reader.uleb128 ar in
       if code <> 0 then begin
         let tag = Bytesio.Reader.uleb128 ar in
         let has_children = Bytesio.Reader.u8 ar = 1 in
         let rec pairs acc =
           let at = Bytesio.Reader.uleb128 ar in
           let form = Bytesio.Reader.uleb128 ar in
           if at = 0 && form = 0 then List.rev acc else pairs ((at, form) :: acc)
         in
         Hashtbl.replace shapes code { s_tag = tag; s_children = has_children; s_pairs = pairs [] };
         go ()
       end
     in
     go ()
   with Bytesio.Truncated _ ->
     diag ~offset:(Bytesio.Reader.pos ar) Diag.Degraded "truncated abbrev");
  (* Info section: parse units. *)
  let b = Builder.create () in
  let offset_to_id : (int, int) Hashtbl.t = Hashtbl.create 256 in
  (* Refs are recorded as raw section offsets first; a remapping pass
     rewrites them to arena ids once every DIE is known. *)
  let r = Bytesio.Reader.of_string info in
  let ufail msg = if strict then raise (Bad_dwarf msg) else raise (Unit_fail msg) in
  let rec parse_die () =
    let die_off = Bytesio.Reader.pos r in
    let code = Bytesio.Reader.uleb128 r in
    if code = 0 then None
    else begin
      let shape =
        match Hashtbl.find_opt shapes code with
        | Some s -> s
        | None -> ufail (Printf.sprintf "unknown abbrev %d" code)
      in
      let attrs =
        List.map
          (fun (at, form) ->
            let v =
              if form = form_string then String (Bytesio.Reader.cstring r)
              else if form = form_udata then Int (Bytesio.Reader.uleb128 r)
              else if form = form_data8 then Addr (Bytesio.Reader.u64 r)
              else if form = form_flag_present then Flag
              else if form = form_ref4 then Ref (Bytesio.Reader.u32 r)
              else ufail (Printf.sprintf "unsupported form 0x%x" form)
            in
            (at, v))
          shape.s_pairs
      in
      let children =
        if shape.s_children then begin
          let rec go acc =
            match parse_die () with None -> List.rev acc | Some id -> go (id :: acc)
          in
          go []
        end
        else []
      in
      let id = Builder.add b ~tag:shape.s_tag ~attrs ~children in
      Hashtbl.replace offset_to_id die_off id;
      Some id
    end
  in
  (* Consecutive resync failures mean we are walking garbage (e.g. a
     zeroed region where every 4-byte "length" is 0): bail rather than
     emit one diagnostic per word of junk. *)
  let max_consecutive_skips = 8 in
  let consecutive_skips = ref 0 in
  (try
     while not (Bytesio.Reader.eof r) do
       let unit_start = Bytesio.Reader.pos r in
       let len =
         match Bytesio.Reader.u32 r with
         | len -> len
         | exception Bytesio.Truncated _ ->
             if strict then raise (Bad_dwarf "truncated info");
             diag ~offset:unit_start Diag.Degraded "truncated unit header; rest of .debug_info dropped";
             raise Stop_units
       in
       let skip msg =
         incr consecutive_skips;
         diag ~offset:unit_start Diag.Degraded
           (Printf.sprintf "unit at offset %d: %s; unit skipped" unit_start msg);
         (* resync on the unit length field; [unit_start + 4 + len] is the
            start of the next unit in a well-formed stream *)
         let next = unit_start + 4 + len in
         if next > String.length info then begin
           diag ~offset:unit_start Diag.Degraded "rest of .debug_info dropped";
           raise Stop_units
         end
         else if !consecutive_skips >= max_consecutive_skips then begin
           diag ~offset:unit_start Diag.Degraded
             (Printf.sprintf "%d consecutive undecodable units; rest of .debug_info dropped"
                !consecutive_skips);
           raise Stop_units
         end
         else Bytesio.Reader.seek r next
       in
       try
         let version = Bytesio.Reader.u16 r in
         if version <> 4 then ufail "bad version";
         let _abbrev_off = Bytesio.Reader.u32 r in
         let _addr_size = Bytesio.Reader.u8 r in
         (match parse_die () with
         | Some id -> Builder.add_root b id
         | None -> ufail "empty unit");
         consecutive_skips := 0
       with
       | Unit_fail msg -> skip msg
       | Bytesio.Truncated _ ->
           if strict then raise (Bad_dwarf "truncated info");
           skip "truncated"
     done
   with Stop_units -> ());
  let arena = Builder.finish b in
  (* Rewrite Ref values from section offsets to arena ids. *)
  let dangling = ref 0 in
  let dies =
    Array.map
      (fun die ->
        let attrs =
          List.filter_map
            (fun (at, v) ->
              match v with
              | Ref off -> (
                  match Hashtbl.find_opt offset_to_id off with
                  | Some id -> Some (at, Ref id)
                  | None ->
                      if strict then
                        raise (Bad_dwarf (Printf.sprintf "dangling ref to offset %d" off));
                      incr dangling;
                      None)
              | _ -> Some (at, v))
            die.attrs
        in
        { die with attrs })
      arena.dies
  in
  if !dangling > 0 then
    diag Diag.Degraded (Printf.sprintf "%d dangling references dropped" !dangling);
  { dw_arena = { dies; root_ids = arena.root_ids }; dw_diags = Diag.Collector.diags collector }

let decode ?(mode = `Strict) ~info ~abbrev () =
  Ds_trace.Trace.span ~name:"dwarf.die.decode"
    ~attrs:
      [
        ("info_bytes", string_of_int (String.length info));
        ("abbrev_bytes", string_of_int (String.length abbrev));
      ]
    (fun () ->
      match mode with
      | `Strict -> Diag.outcome (decode_impl ~strict:true ~info ~abbrev).dw_arena
      | `Lenient ->
          let r = decode_impl ~strict:false ~info ~abbrev in
          Diag.outcome ~diags:r.dw_diags r.dw_arena)

let decode_lenient ~info ~abbrev =
  let o = decode ~mode:`Lenient ~info ~abbrev () in
  { dw_arena = o.Diag.ok; dw_diags = o.Diag.diags }
