open Ds_ctypes
open Die

type inlined_call = { ic_callee : string; ic_pc : int64; ic_call_line : int }

type subprogram = {
  sp_name : string;
  sp_proto : Ctype.proto;
  sp_file : string;
  sp_line : int;
  sp_external : bool;
  sp_declared_inline : bool;
  sp_low_pc : int64 option;
  sp_inlined : inlined_call list;
  sp_calls : string list;
}

type cu = {
  cu_name : string;
  cu_subprograms : subprogram list;
  cu_structs : Decl.struct_def list;
  cu_enums : Decl.enum_def list;
  cu_typedefs : Decl.typedef_def list;
}

(* ------------------------------------------------------------------ *)
(* Encoding: lower each CU into DIEs.                                  *)
(* ------------------------------------------------------------------ *)

let encode cus =
  let b = Builder.create () in
  let lower_cu cu =
    (* Per-CU memo of lowered types; [visiting] breaks self-referential
       aggregates (e.g. task_struct containing task_struct pointers) by
       lowering the inner reference as a declaration-only DIE. *)
    let memo : (Ctype.t, int) Hashtbl.t = Hashtbl.create 64 in
    let visiting : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let defined_structs =
      List.fold_left
        (fun acc (s : Decl.struct_def) -> (s.sname, s) :: acc)
        [] cu.cu_structs
    in
    let defined_enums =
      List.fold_left (fun acc (e : Decl.enum_def) -> (e.ename, e) :: acc) [] cu.cu_enums
    in
    let defined_typedefs =
      List.fold_left
        (fun acc (td : Decl.typedef_def) -> (td.tname, td) :: acc)
        [] cu.cu_typedefs
    in
    let children = ref [] in
    let add_top id = children := id :: !children in
    let rec type_id (t : Ctype.t) =
      match Hashtbl.find_opt memo t with
      | Some id -> id
      | None ->
          let id =
            match t with
            | Ctype.Void ->
                (* represented by absence of DW_AT_type; callers special-case *)
                invalid_arg "type_id Void"
            | Ctype.Int { name; bits; signed } ->
                Builder.add b ~tag:Dw.tag_base_type
                  ~attrs:
                    [
                      (Dw.at_name, String name);
                      (Dw.at_byte_size, Int (bits / 8));
                      (Dw.at_encoding, Int (if signed then Dw.enc_signed else Dw.enc_unsigned));
                    ]
                  ~children:[]
            | Ctype.Float { name; bits } ->
                Builder.add b ~tag:Dw.tag_base_type
                  ~attrs:
                    [
                      (Dw.at_name, String name);
                      (Dw.at_byte_size, Int (bits / 8));
                      (Dw.at_encoding, Int Dw.enc_float);
                    ]
                  ~children:[]
            | Ctype.Ptr inner -> wrap Dw.tag_pointer_type inner
            | Ctype.Const inner -> wrap Dw.tag_const_type inner
            | Ctype.Volatile inner -> wrap Dw.tag_volatile_type inner
            | Ctype.Array (elem, n) ->
                let sub =
                  Builder.add b ~tag:Dw.tag_subrange_type
                    ~attrs:[ (Dw.at_upper_bound, Int (n - 1)) ]
                    ~children:[]
                in
                let attrs =
                  match elem with
                  | Ctype.Void -> []
                  | _ -> [ (Dw.at_type, Ref (type_id elem)) ]
                in
                Builder.add b ~tag:Dw.tag_array_type ~attrs ~children:[ sub ]
            | Ctype.Struct_ref name -> aggregate `Struct name
            | Ctype.Union_ref name -> aggregate `Union name
            | Ctype.Enum_ref name -> enum name
            | Ctype.Typedef_ref name -> typedef name
            | Ctype.Func_proto proto ->
                let params = List.map param_die proto.params in
                let params =
                  if proto.variadic then
                    params
                    @ [ Builder.add b ~tag:Dw.tag_unspecified_parameters ~attrs:[] ~children:[] ]
                  else params
                in
                let attrs =
                  (Dw.at_prototyped, Flag)
                  ::
                  (match proto.ret with
                  | Ctype.Void -> []
                  | r -> [ (Dw.at_type, Ref (type_id r)) ])
                in
                Builder.add b ~tag:Dw.tag_subroutine_type ~attrs ~children:params
          in
          Hashtbl.replace memo t id;
          (* Every type DIE must live in the tree, or its Ref target would
             never be laid out; they all become children of the CU. *)
          add_top id;
          id
    and wrap tag inner =
      let attrs =
        match inner with Ctype.Void -> [] | _ -> [ (Dw.at_type, Ref (type_id inner)) ]
      in
      Builder.add b ~tag ~attrs ~children:[]
    and aggregate kind name =
      let tag = match kind with `Struct -> Dw.tag_structure_type | `Union -> Dw.tag_union_type in
      match List.assoc_opt name defined_structs with
      | Some def when def.skind = kind && not (Hashtbl.mem visiting name) ->
          Hashtbl.replace visiting name ();
          let members =
            List.map
              (fun (f : Decl.field) ->
                let attrs =
                  [
                    (Dw.at_name, String f.fname);
                    (Dw.at_data_member_location, Int (f.bits_offset / 8));
                  ]
                  @
                  match f.ftype with
                  | Ctype.Void -> []
                  | t -> [ (Dw.at_type, Ref (type_id t)) ]
                in
                Builder.add b ~tag:Dw.tag_member ~attrs ~children:[])
              def.fields
          in
          let id =
            Builder.add b ~tag
              ~attrs:[ (Dw.at_name, String name); (Dw.at_byte_size, Int def.byte_size) ]
              ~children:members
          in
          Hashtbl.remove visiting name;
          id
      | _ ->
          Builder.add b ~tag
            ~attrs:[ (Dw.at_name, String name); (Dw.at_declaration, Flag) ]
            ~children:[]
    and enum name =
      match List.assoc_opt name defined_enums with
      | Some def ->
          let enumerators =
            List.map
              (fun (n, v) ->
                Builder.add b ~tag:Dw.tag_enumerator
                  ~attrs:[ (Dw.at_name, String n); (Dw.at_const_value, Int v) ]
                  ~children:[])
              def.values
          in
          Builder.add b ~tag:Dw.tag_enumeration_type
            ~attrs:[ (Dw.at_name, String name); (Dw.at_byte_size, Int 4) ]
            ~children:enumerators
      | None ->
          Builder.add b ~tag:Dw.tag_enumeration_type
            ~attrs:[ (Dw.at_name, String name); (Dw.at_declaration, Flag) ]
            ~children:[]
    and typedef name =
      match List.assoc_opt name defined_typedefs with
      | Some def ->
          let attrs =
            (Dw.at_name, String name)
            ::
            (match def.aliased with
            | Ctype.Void -> []
            | t -> [ (Dw.at_type, Ref (type_id t)) ])
          in
          Builder.add b ~tag:Dw.tag_typedef ~attrs ~children:[]
      | None ->
          Builder.add b ~tag:Dw.tag_typedef
            ~attrs:[ (Dw.at_name, String name); (Dw.at_declaration, Flag) ]
            ~children:[]
    and param_die (p : Ctype.param) =
      let attrs =
        (Dw.at_name, String p.pname)
        ::
        (match p.ptype with
        | Ctype.Void -> []
        | t -> [ (Dw.at_type, Ref (type_id t)) ])
      in
      Builder.add b ~tag:Dw.tag_formal_parameter ~attrs ~children:[]
    in
    (* Emit every aggregate/enum/typedef defined in the unit, even if no
       subprogram references it. *)
    List.iter
      (fun (s : Decl.struct_def) ->
        ignore
          (type_id
             (match s.skind with
             | `Struct -> Ctype.Struct_ref s.sname
             | `Union -> Ctype.Union_ref s.sname)))
      cu.cu_structs;
    List.iter (fun (e : Decl.enum_def) -> ignore (type_id (Ctype.Enum_ref e.ename))) cu.cu_enums;
    List.iter
      (fun (td : Decl.typedef_def) -> ignore (type_id (Ctype.Typedef_ref td.tname)))
      cu.cu_typedefs;
    List.iter
      (fun sp ->
        let params = List.map param_die sp.sp_proto.params in
        let params =
          if sp.sp_proto.variadic then
            params
            @ [ Builder.add b ~tag:Dw.tag_unspecified_parameters ~attrs:[] ~children:[] ]
          else params
        in
        let inlined =
          List.map
            (fun ic ->
              Builder.add b ~tag:Dw.tag_inlined_subroutine
                ~attrs:
                  [
                    (Dw.at_name, String ic.ic_callee);
                    (Dw.at_low_pc, Addr ic.ic_pc);
                    (Dw.at_call_file, String cu.cu_name);
                    (Dw.at_call_line, Int ic.ic_call_line);
                  ]
                ~children:[])
            sp.sp_inlined
        in
        let calls =
          List.map
            (fun callee ->
              Builder.add b ~tag:Dw.tag_call_site
                ~attrs:[ (Dw.at_call_origin, String callee) ]
                ~children:[])
            sp.sp_calls
        in
        let attrs =
          [
            (Dw.at_name, String sp.sp_name);
            (Dw.at_decl_file, String sp.sp_file);
            (Dw.at_decl_line, Int sp.sp_line);
          ]
          @ (if sp.sp_external then [ (Dw.at_external, Flag) ] else [])
          @ (if sp.sp_declared_inline then [ (Dw.at_inline, Int Dw.inl_declared_inlined) ]
             else [])
          @ (match sp.sp_low_pc with Some pc -> [ (Dw.at_low_pc, Addr pc) ] | None -> [])
          @
          match sp.sp_proto.ret with
          | Ctype.Void -> []
          | r -> [ (Dw.at_type, Ref (type_id r)) ]
        in
        add_top
          (Builder.add b ~tag:Dw.tag_subprogram ~attrs
             ~children:(params @ inlined @ calls)))
      cu.cu_subprograms;
    let cu_id =
      Builder.add b ~tag:Dw.tag_compile_unit
        ~attrs:[ (Dw.at_name, String cu.cu_name) ]
        ~children:(List.rev !children)
    in
    Builder.add_root b cu_id
  in
  List.iter lower_cu cus;
  Die.encode (Builder.finish b)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

(* A corrupted ref4 offset can remap onto an earlier DIE and create a
   reference cycle (impossible in writer-produced arenas); the depth
   bound turns that into a typed error instead of a stack overflow. *)
let max_type_depth = 64

let decode_cu_of arena =
  let rec ctype_of ?(d = 0) id : Ctype.t =
    if d > max_type_depth then raise (Bad_dwarf "type reference cycle");
    let die = get arena id in
    let inner () =
      match attr_ref die Dw.at_type with Some r -> ctype_of ~d:(d + 1) r | None -> Ctype.Void
    in
    if die.tag = Dw.tag_base_type then begin
      let name = Option.value ~default:"?" (attr_string die Dw.at_name) in
      let bytes = Option.value ~default:4 (attr_int die Dw.at_byte_size) in
      let enc = Option.value ~default:Dw.enc_signed (attr_int die Dw.at_encoding) in
      if enc = Dw.enc_float then Ctype.Float { name; bits = bytes * 8 }
      else
        Ctype.Int
          {
            name;
            bits = bytes * 8;
            signed = enc = Dw.enc_signed || enc = Dw.enc_signed_char;
          }
    end
    else if die.tag = Dw.tag_pointer_type then Ctype.Ptr (inner ())
    else if die.tag = Dw.tag_const_type then Ctype.Const (inner ())
    else if die.tag = Dw.tag_volatile_type then Ctype.Volatile (inner ())
    else if die.tag = Dw.tag_array_type then begin
      let n =
        List.fold_left
          (fun acc c ->
            let child = get arena c in
            if child.tag = Dw.tag_subrange_type then
              match attr_int child Dw.at_upper_bound with Some u -> u + 1 | None -> acc
            else acc)
          0 die.children
      in
      Ctype.Array (inner (), n)
    end
    else if die.tag = Dw.tag_structure_type then
      Ctype.Struct_ref (Option.value ~default:"?" (attr_string die Dw.at_name))
    else if die.tag = Dw.tag_union_type then
      Ctype.Union_ref (Option.value ~default:"?" (attr_string die Dw.at_name))
    else if die.tag = Dw.tag_enumeration_type then
      Ctype.Enum_ref (Option.value ~default:"?" (attr_string die Dw.at_name))
    else if die.tag = Dw.tag_typedef then
      Ctype.Typedef_ref (Option.value ~default:"?" (attr_string die Dw.at_name))
    else if die.tag = Dw.tag_subroutine_type then Ctype.Func_proto (proto_of ~d:(d + 1) die)
    else raise (Bad_dwarf (Printf.sprintf "unexpected type tag 0x%x" die.tag))
  and proto_of ?(d = 0) die : Ctype.proto =
    let params =
      List.filter_map
        (fun c ->
          let child = get arena c in
          if child.tag = Dw.tag_formal_parameter then
            let pname = Option.value ~default:"" (attr_string child Dw.at_name) in
            let ptype =
              match attr_ref child Dw.at_type with
              | Some r -> ctype_of ~d:(d + 1) r
              | None -> Ctype.Void
            in
            Some Ctype.{ pname; ptype }
          else None)
        die.children
    in
    let variadic =
      List.exists (fun c -> (get arena c).tag = Dw.tag_unspecified_parameters) die.children
    in
    let ret =
      match attr_ref die Dw.at_type with
      | Some r -> ctype_of ~d:(d + 1) r
      | None -> Ctype.Void
    in
    { ret; params; variadic }
  in
  let decode_cu root =
    let cu_die = get arena root in
    if cu_die.tag <> Dw.tag_compile_unit then raise (Bad_dwarf "root is not a compile unit");
    let cu_name = Option.value ~default:"?" (attr_string cu_die Dw.at_name) in
    let subprograms = ref [] in
    let structs = ref [] in
    let enums = ref [] in
    let typedefs = ref [] in
    List.iter
      (fun c ->
        let die = get arena c in
        if die.tag = Dw.tag_subprogram then begin
          let inlined =
            List.filter_map
              (fun cc ->
                let child = get arena cc in
                if child.tag = Dw.tag_inlined_subroutine then
                  Some
                    {
                      ic_callee = Option.value ~default:"?" (attr_string child Dw.at_name);
                      ic_pc = Option.value ~default:0L (attr_addr child Dw.at_low_pc);
                      ic_call_line =
                        Option.value ~default:0 (attr_int child Dw.at_call_line);
                    }
                else None)
              die.children
          in
          let calls =
            List.filter_map
              (fun cc ->
                let child = get arena cc in
                if child.tag = Dw.tag_call_site then attr_string child Dw.at_call_origin
                else None)
              die.children
          in
          subprograms :=
            {
              sp_name = Option.value ~default:"?" (attr_string die Dw.at_name);
              sp_proto = proto_of die;
              sp_file = Option.value ~default:cu_name (attr_string die Dw.at_decl_file);
              sp_line = Option.value ~default:0 (attr_int die Dw.at_decl_line);
              sp_external = has_flag die Dw.at_external;
              sp_declared_inline =
                (match attr_int die Dw.at_inline with
                | Some i ->
                    i = Dw.inl_declared_inlined || i = Dw.inl_declared_not_inlined
                | None -> false);
              sp_low_pc = attr_addr die Dw.at_low_pc;
              sp_inlined = inlined;
              sp_calls = calls;
            }
            :: !subprograms
        end
        else if
          (die.tag = Dw.tag_structure_type || die.tag = Dw.tag_union_type)
          && not (has_flag die Dw.at_declaration)
        then begin
          let fields =
            List.filter_map
              (fun cc ->
                let child = get arena cc in
                if child.tag = Dw.tag_member then
                  Some
                    Decl.
                      {
                        fname = Option.value ~default:"?" (attr_string child Dw.at_name);
                        ftype =
                          (match attr_ref child Dw.at_type with
                          | Some r -> ctype_of r
                          | None -> Ctype.Void);
                        bits_offset =
                          8 * Option.value ~default:0 (attr_int child Dw.at_data_member_location);
                      }
                else None)
              die.children
          in
          structs :=
            Decl.
              {
                sname = Option.value ~default:"?" (attr_string die Dw.at_name);
                skind = (if die.tag = Dw.tag_structure_type then `Struct else `Union);
                byte_size = Option.value ~default:0 (attr_int die Dw.at_byte_size);
                fields;
              }
            :: !structs
        end
        else if die.tag = Dw.tag_enumeration_type && not (has_flag die Dw.at_declaration)
        then begin
          let values =
            List.filter_map
              (fun cc ->
                let child = get arena cc in
                if child.tag = Dw.tag_enumerator then
                  Some
                    ( Option.value ~default:"?" (attr_string child Dw.at_name),
                      Option.value ~default:0 (attr_int child Dw.at_const_value) )
                else None)
              die.children
          in
          enums :=
            Decl.{ ename = Option.value ~default:"?" (attr_string die Dw.at_name); values }
            :: !enums
        end
        else if die.tag = Dw.tag_typedef && not (has_flag die Dw.at_declaration) then
          match attr_ref die Dw.at_type with
          | Some r ->
              typedefs :=
                Decl.
                  {
                    tname = Option.value ~default:"?" (attr_string die Dw.at_name);
                    aliased = ctype_of r;
                  }
                :: !typedefs
          | None -> ())
      cu_die.children;
    {
      cu_name;
      cu_subprograms = List.rev !subprograms;
      cu_structs = List.rev !structs;
      cu_enums = List.rev !enums;
      cu_typedefs = List.rev !typedefs;
    }
  in
  decode_cu

let decode_strict ~info ~abbrev =
  let arena = Ds_util.Diag.ok (Die.decode ~info ~abbrev ()) in
  List.map (decode_cu_of arena) (Die.roots arena)

let decode_lenient_impl ~info ~abbrev =
  let o = Die.decode ~mode:`Lenient ~info ~abbrev () in
  let arena = Ds_util.Diag.ok o and dw_diags = Ds_util.Diag.diags o in
  let decode_cu = decode_cu_of arena in
  let skipped = ref 0 in
  let cus =
    List.filter_map
      (fun root ->
        match decode_cu root with
        | cu -> Some cu
        | exception Bad_dwarf _ ->
            incr skipped;
            None)
      (Die.roots arena)
  in
  let diags =
    dw_diags
    @
    if !skipped > 0 then
      [
        Ds_util.Diag.v Ds_util.Diag.Degraded ~component:"dwarf"
          (Printf.sprintf "%d compile units undecodable (skipped)" !skipped);
      ]
    else []
  in
  (cus, diags)

let decode ?(mode = `Strict) ~info ~abbrev () =
  Ds_trace.Trace.span ~name:"dwarf.info.decode" (fun () ->
      match mode with
      | `Strict -> Ds_util.Diag.outcome (decode_strict ~info ~abbrev)
      | `Lenient ->
          let cus, diags = decode_lenient_impl ~info ~abbrev in
          Ds_util.Diag.outcome ~diags cus)

let decode_lenient ~info ~abbrev =
  let o = decode ~mode:`Lenient ~info ~abbrev () in
  (Ds_util.Diag.ok o, Ds_util.Diag.diags o)
