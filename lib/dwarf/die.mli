(** DWARF-lite DIE trees and their binary encoding.

    The encoding follows the real DWARF discipline: a [.debug_abbrev]
    section of abbreviation declarations (ULEB code, tag, has-children
    flag, attribute/form pairs) shared by all units, and a [.debug_info]
    section of per-compile-unit contributions, each with a unit header
    followed by the DIE tree; sibling lists are terminated by a zero
    abbreviation code. References are [DW_FORM_ref4] section-relative
    offsets. Tag, attribute and form numbers are the standard DWARF 4
    values (see {!Dw}).

    DIEs live in an arena and reference each other by arena id, which
    keeps the structure acyclic and makes encode/decode a bijection on
    the tree shape. *)

module Dw : sig
  (** Standard DWARF constants (subset). *)

  val tag_array_type : int
  val tag_enumeration_type : int
  val tag_formal_parameter : int
  val tag_member : int
  val tag_pointer_type : int
  val tag_compile_unit : int
  val tag_structure_type : int
  val tag_subroutine_type : int
  val tag_typedef : int
  val tag_union_type : int
  val tag_base_type : int
  val tag_const_type : int
  val tag_enumerator : int
  val tag_subprogram : int
  val tag_variable : int
  val tag_volatile_type : int
  val tag_subrange_type : int
  val tag_inlined_subroutine : int
  val tag_call_site : int
  val tag_unspecified_parameters : int

  val at_name : int
  val at_byte_size : int
  val at_encoding : int
  val at_type : int
  val at_low_pc : int
  val at_high_pc : int
  val at_decl_file : int
  val at_decl_line : int
  val at_declaration : int
  val at_inline : int
  val at_external : int
  val at_abstract_origin : int
  val at_data_member_location : int
  val at_upper_bound : int
  val at_prototyped : int
  val at_const_value : int
  val at_call_file : int
  val at_call_line : int
  val at_call_origin : int

  val inl_not_inlined : int

  val inl_inlined : int
  (** compiler-inlined, not declared inline *)

  val inl_declared_not_inlined : int
  val inl_declared_inlined : int

  val enc_signed : int
  val enc_unsigned : int
  val enc_boolean : int
  val enc_signed_char : int
  val enc_unsigned_char : int
  val enc_float : int
end

type value =
  | String of string
  | Int of int
  | Addr of int64
  | Flag
  | Ref of int  (** arena id of the referenced DIE *)

type die = { tag : int; attrs : (int * value) list; children : int list }

type t
(** An arena of DIEs plus the list of compile-unit roots. *)

exception Bad_dwarf of string

module Builder : sig
  type arena = t
  type t

  val create : unit -> t
  val add : t -> tag:int -> attrs:(int * value) list -> children:int list -> int
  (** Children must already exist in the arena (build bottom-up). *)

  val add_root : t -> int -> unit
  (** Mark a DIE (normally a compile unit) as a top-level unit root. *)

  val finish : t -> arena
end

val get : t -> int -> die
val roots : t -> int list
val size : t -> int

val attr : die -> int -> value option
val attr_string : die -> int -> string option
val attr_int : die -> int -> int option
val attr_addr : die -> int -> int64 option
val attr_ref : die -> int -> int option
val has_flag : die -> int -> bool

val encode : t -> string * string
(** [encode t] is [(debug_info, debug_abbrev)]. *)

val decode :
  ?mode:Ds_util.Diag.mode -> info:string -> abbrev:string -> unit -> t Ds_util.Diag.outcome
(** Unified entrypoint. [`Strict] (the default) raises [Bad_dwarf] on
    the first malformed byte, returning empty [diags]. [`Lenient] never
    raises: a failure inside one compile unit skips just that unit
    (resynchronizing on the unit header's length field), dangling
    references are dropped, and the losses are described in [diags].
    The trailing [unit] forces resolution of the optional [?mode]. *)

type decode_result = { dw_arena : t; dw_diags : Ds_util.Diag.t list }

val decode_lenient : info:string -> abbrev:string -> decode_result
[@@ocaml.deprecated "use Die.decode ~mode:`Lenient"]
(** @deprecated Thin wrapper over [decode ~mode:`Lenient]. *)
