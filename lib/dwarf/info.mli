(** High-level view of the debug information: compile units containing
    subprogram declarations, type definitions, inlined-call records and
    call sites.

    This is the bridge between the mini compiler (which produces a [cu]
    list describing what it compiled) and DepSurf (which recovers the same
    [cu] list from the [.debug_info]/[.debug_abbrev] bytes of an image).

    Simplifications relative to real DWARF, chosen to keep the codec small
    while preserving everything DepSurf consumes:
    - [DW_AT_decl_file]/[DW_AT_call_file] carry the path string directly
      instead of an index into the line-number program;
    - inlined subroutines and call sites name their callee with
      [DW_AT_name]/[DW_AT_call_origin] strings rather than
      [DW_AT_abstract_origin] references (our subprogram DIEs live in
      other units);
    - every unit shares one abbreviation table at offset 0. *)

open Ds_ctypes

type inlined_call = {
  ic_callee : string;  (** name of the function whose body was inlined *)
  ic_pc : int64;  (** address of the inlined body inside the caller *)
  ic_call_line : int;
}

type subprogram = {
  sp_name : string;
  sp_proto : Ctype.proto;
  sp_file : string;
  sp_line : int;
  sp_external : bool;  (** non-static *)
  sp_declared_inline : bool;  (** carried [inline] in the source *)
  sp_low_pc : int64 option;  (** [None] when no out-of-line copy exists *)
  sp_inlined : inlined_call list;  (** callees inlined into this function *)
  sp_calls : string list;  (** callees invoked by a real call *)
}

type cu = {
  cu_name : string;  (** source file, e.g. ["fs/sync.c"] *)
  cu_subprograms : subprogram list;
  cu_structs : Decl.struct_def list;  (** aggregates defined in this unit *)
  cu_enums : Decl.enum_def list;
  cu_typedefs : Decl.typedef_def list;
}

val encode : cu list -> string * string
(** [(debug_info, debug_abbrev)] sections. *)

val decode :
  ?mode:Ds_util.Diag.mode -> info:string -> abbrev:string -> unit -> cu list Ds_util.Diag.outcome
(** Unified entrypoint; inverse of {!encode}. [`Strict] (the default)
    raises [Die.Bad_dwarf] on malformed input, returning empty [diags].
    [`Lenient] never raises: malformed compile units are skipped
    individually (resynchronizing on unit boundaries) and the losses are
    described in [diags]. The trailing [unit] forces resolution of the
    optional [?mode]. *)

val decode_lenient : info:string -> abbrev:string -> cu list * Ds_util.Diag.t list
[@@ocaml.deprecated "use Info.decode ~mode:`Lenient"]
(** @deprecated Thin wrapper over [decode ~mode:`Lenient]. *)
