(** Structured verifier-rejection diagnostics.

    {!Ds_bpf.Verifier} answers {e whether} a program loads;
    this module answers {e why not}, in a form a tool author can act on.
    A rejected program yields a {!finding}: the violated {!Taxonomy}
    rule, the offending instruction offset, a disassembled window around
    it ({!Ds_bpf.Disasm.line}), the abstract register file at the
    failure point, the forked-path trail that reached it, and a
    suggested bridge — with {!Depsurf.Compat} stable probes named when
    the rejection is dependency-induced rather than program-induced.

    Reports are produced from raw object bytes ({!verify_bytes} — never
    raises, mirrors the loader's lenient pipeline), persist through
    {!Ds_store} keyed by object digest ({!of_dataset}, warm
    re-verification is decode-only), and render identically as human
    text ({!render}), dataset JSON ({!report_json}) and the public
    envelope ({!envelope}) shared byte-for-byte by [depsurf doctor
    --json] and [POST /v1/verify].

    The second half is the fuzz harness: {!campaign_insns} and
    {!campaign_obj} drive {!Ds_faultgen} mutation corpora through the
    verifier and loader, asserting nothing ever escapes as an exception
    and every rejection classifies ({!campaign} tallies). *)

type finding = {
  fd_rule : Taxonomy.t;
  fd_insn : int;  (** offending instruction index; [-1] = whole-program *)
  fd_msg : string;  (** the verifier/loader message, byte-identical *)
  fd_window : (int * string) list;
      (** disassembly around the offending insn: (index, rendered line) *)
  fd_regs : (string * string) list;
      (** abstract register file at the failure point, [("r0",
          "uninit"); ...]; empty for whole-program rejections *)
  fd_trail : (int * bool) list;
      (** branch decisions (insn index, taken?) of the path that reached
          the failure, oldest first *)
  fd_suggestion : string;  (** {!Taxonomy.suggestion} for this finding *)
}

type prog_report = {
  pr_name : string;
  pr_section : string;
  pr_insns : int;  (** instruction count *)
  pr_finding : finding option;  (** [None] = accepted *)
}

type report = {
  rp_obj : string;  (** object name *)
  rp_kernel : string option;  (** target kernel tag, when name-checking *)
  rp_digest : string;  (** content digest of the object bytes *)
  rp_progs : prog_report list;
  rp_diags : Ds_util.Diag.t list;
      (** object-read diagnostics plus one [Degraded] entry per rejected
          program; drives health/exit-code on every surface *)
}

val digest : string -> string
(** Content digest ({!Ds_store.Store.Hash}) of raw object bytes — the
    report's cache identity. *)

val verify_insns : ?section:string -> Ds_bpf.Insn.t list -> finding option
(** Verify one instruction list; [None] = accepted. Never raises.
    [section] (the attach section) feeds the compat hint. *)

val verify_stream : ?section:string -> string -> finding option
(** Decode an encoded instruction stream and verify it; a stream that
    does not decode yields a {!Taxonomy.Malformed_insn} finding. Never
    raises — the fuzz harness's target. *)

val verify_prog : ?kernel:Ds_bpf.Vmlinux.t -> Ds_bpf.Obj.prog -> finding option
(** {!verify_insns} plus the loader's structural kfunc checks: a
    [Kfunc_call] must index the kfunc table, and (when [kernel] is
    given) the name must exist in its BTF. *)

val verify_bytes : ?kernel:Ds_bpf.Vmlinux.t -> string -> report
(** The full pipeline on raw bytes: lenient object read, then
    {!verify_prog} per program. Never raises. *)

val build_count : int Atomic.t
(** Incremented by every {!verify_bytes}; the bench asserts it stays
    flat across a warm {!of_dataset} run (decode-only). *)

(** {2 Persistence} *)

val ns : string
(** The {!Ds_store} namespace, ["verify"]. *)

val codec_version : int

val encode : report -> string
val decode : string -> report
(** Raises {!Depsurf.Codec.Decode_error} on malformed payloads (the
    store evicts and recomputes). *)

val store_key : Depsurf.Dataset.t -> image:string -> digest:string -> string

val of_dataset :
  Depsurf.Dataset.t -> Ds_ksrc.Version.t -> Ds_ksrc.Config.t -> string -> report
(** Verify object bytes against a study image's kernel, memoized
    in-process and through the dataset's store keyed by (image tag,
    object digest) — a warm re-verification decodes, it does not
    re-verify. Reports whose object read was [Fatal] are not cached. *)

(** {2 Views} *)

val findings : report -> (prog_report * finding) list
(** The rejected programs, in object order. *)

val report_json : report -> Ds_util.Json.t
val envelope : report -> Ds_util.Json.t
(** {!report_json} wrapped in the {!Depsurf.Api} envelope with health
    derived from [rp_diags] — the exact payload of [depsurf doctor
    --json] and [POST /v1/verify]. *)

val render : report -> string
(** Human-readable rejection sections for the CLI. *)

(** {2 Fuzz campaigns} *)

type campaign = {
  cp_total : int;
  cp_accepted : int;
  cp_rejected : int;
  cp_crashed : (string * string) list;
      (** (mutation name, exception) — must be empty *)
  cp_unclassified : int;
      (** findings failing the {!Taxonomy.id}/[of_id] round-trip or
          missing a suggestion — must be 0 *)
  cp_rules : (string * int) list;  (** rejection tally by rule id *)
}

val merge : campaign -> campaign -> campaign

val campaign_insns :
  ?count:int -> seed:int64 -> Ds_bpf.Obj.prog -> campaign
(** Mutate the program's {e encoded instruction stream}
    ({!Ds_faultgen.Faultgen.bytecode_mutations}) and push every mutant
    through {!verify_stream}. *)

val campaign_obj :
  ?count:int -> seed:int64 -> ?kernel:Ds_bpf.Vmlinux.t -> string -> campaign
(** Mutate whole object bytes ({!Ds_faultgen.Faultgen.mutations}) and
    push every mutant through {!verify_bytes}. *)
