open Ds_bpf

type t =
  | Empty_program
  | Size_cap
  | No_exit
  | Invalid_register
  | Uninit_register
  | Write_r10
  | Ctx_oob
  | Stack_oob_read
  | Stack_oob_write
  | Scalar_deref
  | Ctx_write
  | Bad_store_target
  | Unknown_helper
  | Backward_jump
  | Jump_oob
  | Uninit_r0_exit
  | Path_explosion
  | Kfunc_index_oob
  | Unknown_kfunc
  | Malformed_insn

let all =
  [
    Empty_program; Size_cap; No_exit; Invalid_register; Uninit_register;
    Write_r10; Ctx_oob; Stack_oob_read; Stack_oob_write; Scalar_deref;
    Ctx_write; Bad_store_target; Unknown_helper; Backward_jump; Jump_oob;
    Uninit_r0_exit; Path_explosion; Kfunc_index_oob; Unknown_kfunc;
    Malformed_insn;
  ]

let id = function
  | Empty_program -> "empty-program"
  | Size_cap -> "size-cap"
  | No_exit -> "no-exit"
  | Invalid_register -> "invalid-register"
  | Uninit_register -> "uninit-register"
  | Write_r10 -> "write-to-r10"
  | Ctx_oob -> "ctx-out-of-bounds"
  | Stack_oob_read -> "stack-read-out-of-frame"
  | Stack_oob_write -> "stack-write-out-of-frame"
  | Scalar_deref -> "unsafe-load-scalar"
  | Ctx_write -> "write-into-ctx"
  | Bad_store_target -> "bad-store-target"
  | Unknown_helper -> "unknown-helper"
  | Backward_jump -> "backward-jump"
  | Jump_oob -> "jump-out-of-range"
  | Uninit_r0_exit -> "uninit-r0-at-exit"
  | Path_explosion -> "path-explosion"
  | Kfunc_index_oob -> "kfunc-index-out-of-range"
  | Unknown_kfunc -> "unknown-kfunc"
  | Malformed_insn -> "malformed-insn"

let of_id s = List.find_opt (fun r -> String.equal (id r) s) all

let describe = function
  | Empty_program -> "the program has no instructions"
  | Size_cap -> "the program exceeds the instruction cap"
  | No_exit -> "control flow falls off the end of the stream"
  | Invalid_register -> "an instruction names a register outside r0-r10"
  | Uninit_register -> "a register is read before any write defines it"
  | Write_r10 -> "an instruction writes the read-only frame pointer r10"
  | Ctx_oob -> "a context load reaches past the context bound"
  | Stack_oob_read -> "a stack load falls outside the 512-byte frame"
  | Stack_oob_write -> "a stack store falls outside the 512-byte frame"
  | Scalar_deref -> "a load dereferences a scalar (unchecked pointer)"
  | Ctx_write -> "a store targets the read-only context"
  | Bad_store_target -> "a store goes through a non-stack pointer"
  | Unknown_helper -> "the called helper id is not in the kernel's registry"
  | Backward_jump -> "a jump forms a back-edge (loops are rejected)"
  | Jump_oob -> "a forward jump lands past the end of the program"
  | Uninit_r0_exit -> "a path exits with the return register r0 unset"
  | Path_explosion -> "branch forking exhausted the verifier's state budget"
  | Kfunc_index_oob -> "a kfunc call indexes past the object's kfunc table"
  | Unknown_kfunc -> "the named kernel function is absent from kernel BTF"
  | Malformed_insn -> "the instruction stream does not decode"

let of_verifier = function
  | Verifier.Empty_program -> Empty_program
  | Verifier.Size_cap -> Size_cap
  | Verifier.No_exit -> No_exit
  | Verifier.Invalid_register -> Invalid_register
  | Verifier.Uninit_register -> Uninit_register
  | Verifier.Write_r10 -> Write_r10
  | Verifier.Ctx_oob -> Ctx_oob
  | Verifier.Stack_oob_read -> Stack_oob_read
  | Verifier.Stack_oob_write -> Stack_oob_write
  | Verifier.Scalar_deref -> Scalar_deref
  | Verifier.Ctx_write -> Ctx_write
  | Verifier.Bad_store_target -> Bad_store_target
  | Verifier.Unknown_helper -> Unknown_helper
  | Verifier.Backward_jump -> Backward_jump
  | Verifier.Jump_oob -> Jump_oob
  | Verifier.Uninit_r0_exit -> Uninit_r0_exit
  | Verifier.Path_explosion -> Path_explosion

let dependency_induced = function
  | Unknown_helper | Unknown_kfunc -> true
  | _ -> false

(* When the rejection is dependency-induced and we know the program's
   attach section, check whether a stable probe in the compat registry
   covers that hook: the probe resolves per kernel, which is exactly the
   bridge the paper's §6 layer provides. *)
let compat_hint section =
  match Obj.hook_of_section section with
  | None -> None
  | Some hook ->
      List.find_map
        (fun (p : Depsurf.Compat.probe) ->
          if List.exists (fun c -> c.Depsurf.Compat.ca_hook = hook) p.pb_candidates
          then Some p.pb_name
          else None)
        Depsurf.Compat.default_registry

let suggestion ?section ?detail rule =
  let base =
    match rule with
    | Empty_program -> "emit at least one instruction; the minimal program is `r0 = 0; exit`"
    | Size_cap ->
        Printf.sprintf "split the program or reduce unrolling below the %d-instruction cap"
          Verifier.max_insns
    | No_exit -> "terminate every path with `exit`"
    | Invalid_register -> "use only registers r0-r10"
    | Uninit_register -> "initialize the register (e.g. `rN = 0`) before reading it"
    | Write_r10 -> "r10 is the read-only frame pointer; compute into a scratch register instead"
    | Ctx_oob ->
        Printf.sprintf "hoist a bound check before the load; context offsets must stay below %d"
          Verifier.ctx_limit
    | Stack_oob_read | Stack_oob_write ->
        "keep r10-relative accesses inside the [-512, 0) stack frame"
    | Scalar_deref -> "route the scalar through `bpf_probe_read` instead of dereferencing it"
    | Ctx_write -> "the context is read-only; copy the value to a stack slot instead"
    | Bad_store_target -> "stores must go through r10-relative stack slots"
    | Unknown_helper -> (
        match detail with
        | Some d -> Printf.sprintf "helper #%s does not exist on this kernel; gate the call or pick a portable helper" d
        | None -> "the helper id does not exist on this kernel; gate the call or pick a portable helper")
    | Backward_jump -> "unroll the loop: only forward jumps verify"
    | Jump_oob -> "fix the jump target to land inside the program"
    | Uninit_r0_exit -> "set r0 (the return value) on every path before `exit`"
    | Path_explosion ->
        Printf.sprintf "flatten branch nesting; the verifier forks per branch under a %d-state budget"
          Verifier.max_states
    | Kfunc_index_oob -> "the kfunc call indexes past the object's kfunc table; regenerate the object"
    | Unknown_kfunc -> (
        match detail with
        | Some d -> Printf.sprintf "kernel function %s is absent from this kernel's BTF; pick a kernel that exports it or switch attach points" d
        | None -> "the kernel function is absent from this kernel's BTF; pick a kernel that exports it or switch attach points")
    | Malformed_insn -> "re-emit the instruction stream: 8-byte insns, known opcodes only"
  in
  match (dependency_induced rule, Option.bind section compat_hint) with
  | true, Some probe ->
      Printf.sprintf "%s; the stable probe \"%s\" in the compat registry resolves a working hook per kernel" base probe
  | _ -> base
