open Ds_util
open Ds_bpf
module W = Bytesio.Writer
module R = Bytesio.Reader
module P = Depsurf.Codec.Prim

let component = "verify"

type finding = {
  fd_rule : Taxonomy.t;
  fd_insn : int;
  fd_msg : string;
  fd_window : (int * string) list;
  fd_regs : (string * string) list;
  fd_trail : (int * bool) list;
  fd_suggestion : string;
}

type prog_report = {
  pr_name : string;
  pr_section : string;
  pr_insns : int;
  pr_finding : finding option;
}

type report = {
  rp_obj : string;
  rp_kernel : string option;
  rp_digest : string;
  rp_progs : prog_report list;
  rp_diags : Diag.t list;
}

let digest bytes =
  let h = Ds_store.Store.Hash.create () in
  Ds_store.Store.Hash.string h bytes;
  Ds_store.Store.Hash.hex h

(* ---------------------------- findings ------------------------------- *)

let window insns at =
  if at < 0 then []
  else begin
    let arr = Array.of_list insns in
    let n = Array.length arr in
    if n = 0 then []
    else begin
      let lo = max 0 (at - 2) and hi = min (n - 1) (at + 2) in
      List.init (hi - lo + 1) (fun k ->
          let i = lo + k in
          (i, Disasm.line i arr.(i)))
    end
  end

let reg_state_str = function
  | Verifier.Uninit -> "uninit"
  | Verifier.Scalar -> "scalar"
  | Verifier.Ctx -> "ctx"
  | Verifier.Stack -> "stack"

let regs_render = function
  | None -> []
  | Some a ->
      List.init (Array.length a) (fun i -> (Printf.sprintf "r%d" i, reg_state_str a.(i)))

let mk_finding ?section ?detail ~rule ~insns ~insn ~msg ~regs ~trail () =
  {
    fd_rule = rule;
    fd_insn = insn;
    fd_msg = msg;
    fd_window = window insns insn;
    fd_regs = regs;
    fd_trail = trail;
    fd_suggestion = Taxonomy.suggestion ?section ?detail rule;
  }

let of_rejection ?section insns (r : Verifier.rejection) =
  let rule = Taxonomy.of_verifier r.Verifier.rj_rule in
  (* name the missing helper in the suggestion when we can see the call;
     [rj_insn] is [-1] on whole-program rejections ([nth_opt] raises on
     negative indices, it does not answer [None]) *)
  let detail =
    if r.Verifier.rj_insn < 0 then None
    else
      match (rule, List.nth_opt insns r.Verifier.rj_insn) with
      | Taxonomy.Unknown_helper, Some (Insn.Call id) -> Some (string_of_int id)
      | _ -> None
  in
  mk_finding ?section ?detail ~rule ~insns ~insn:r.Verifier.rj_insn
    ~msg:r.Verifier.rj_msg
    ~regs:(regs_render r.Verifier.rj_regs)
    ~trail:r.Verifier.rj_trail ()

let verify_insns ?section insns =
  match Verifier.verify_full insns with
  | Ok () -> None
  | Error r -> Some (of_rejection ?section insns r)

let verify_stream ?section bytes =
  match Insn.decode bytes with
  | exception Insn.Bad_insn msg ->
      Some
        (mk_finding ?section ~rule:Taxonomy.Malformed_insn ~insns:[] ~insn:(-1)
           ~msg ~regs:[] ~trail:[] ())
  | insns -> verify_insns ?section insns

(* The loader's structural kfunc checks (Loader.resolve_kfuncs), redone
   here so a report can carry them: the index must hit the object's
   kfunc table and — when a target kernel is supplied — the name must
   exist in its BTF. Messages match the loader's byte-for-byte. *)
let kfunc_finding ?kernel (p : Obj.prog) =
  let section = p.Obj.p_section in
  let rec scan i = function
    | [] -> None
    | Insn.Kfunc_call idx :: rest -> (
        match List.nth_opt p.Obj.p_kfuncs idx with
        | None ->
            Some
              (mk_finding ~section ~rule:Taxonomy.Kfunc_index_oob
                 ~insns:p.Obj.p_insns ~insn:i ~msg:"kfunc index out of range"
                 ~regs:[] ~trail:[] ())
        | Some name -> (
            match kernel with
            | Some vm when Ds_btf.Btf.find_func vm.Vmlinux.v_btf name = None ->
                Some
                  (mk_finding ~section ~detail:name ~rule:Taxonomy.Unknown_kfunc
                     ~insns:p.Obj.p_insns ~insn:i
                     ~msg:
                       (Printf.sprintf "calling kernel function %s is not allowed"
                          name)
                     ~regs:[] ~trail:[] ())
            | _ -> scan (i + 1) rest))
    | _ :: rest -> scan (i + 1) rest
  in
  scan 0 p.Obj.p_insns

let verify_prog ?kernel (p : Obj.prog) =
  match verify_insns ~section:p.Obj.p_section p.Obj.p_insns with
  | Some f -> Some f
  | None -> kfunc_finding ?kernel p

let build_count = Atomic.make 0

let verify_bytes ?kernel bytes =
  Atomic.incr build_count;
  let outcome = Obj.read ~mode:`Lenient bytes in
  let obj = Diag.ok outcome in
  let progs =
    List.map
      (fun (p : Obj.prog) ->
        {
          pr_name = p.Obj.p_name;
          pr_section = p.Obj.p_section;
          pr_insns = List.length p.Obj.p_insns;
          pr_finding = verify_prog ?kernel p;
        })
      obj.Obj.o_progs
  in
  let rejection_diags =
    List.filter_map
      (fun pr ->
        Option.map
          (fun f ->
            Diag.v ~context:pr.pr_name
              ?offset:(if f.fd_insn >= 0 then Some f.fd_insn else None)
              Diag.Degraded ~component
              (Printf.sprintf "%s rejected: %s (%s)" pr.pr_name f.fd_msg
                 (Taxonomy.id f.fd_rule)))
          pr.pr_finding)
      progs
  in
  {
    rp_obj = obj.Obj.o_name;
    rp_kernel = Option.map Vmlinux.tag kernel;
    rp_digest = digest bytes;
    rp_progs = progs;
    rp_diags = Diag.diags outcome @ rejection_diags;
  }

(* ---------------------------- persistence ---------------------------- *)

let ns = "verify"
let codec_version = 1

let w_severity w s =
  W.u8 w (match s with Diag.Warning -> 0 | Diag.Degraded -> 1 | Diag.Fatal -> 2)

let r_severity r =
  match R.u8 r with
  | 0 -> Diag.Warning
  | 1 -> Diag.Degraded
  | 2 -> Diag.Fatal
  | n -> P.fail "verify: unknown severity tag %d" n

let w_diag w (d : Diag.t) =
  w_severity w d.Diag.d_severity;
  P.w_str w d.Diag.d_component;
  P.w_opt w P.w_str d.Diag.d_context;
  P.w_opt w (fun w o -> W.uleb128 w o) d.Diag.d_offset;
  P.w_str w d.Diag.d_message

let r_diag r =
  let d_severity = r_severity r in
  let d_component = P.r_str r in
  let d_context = P.r_opt r P.r_str in
  let d_offset = P.r_opt r R.uleb128 in
  let d_message = P.r_str r in
  { Diag.d_severity; d_component; d_context; d_offset; d_message }

let w_finding w f =
  P.w_str w (Taxonomy.id f.fd_rule);
  W.sleb128 w f.fd_insn;
  P.w_str w f.fd_msg;
  P.w_list w
    (fun w (i, l) ->
      W.uleb128 w i;
      P.w_str w l)
    f.fd_window;
  P.w_list w
    (fun w (a, b) ->
      P.w_str w a;
      P.w_str w b)
    f.fd_regs;
  P.w_list w
    (fun w (i, taken) ->
      W.uleb128 w i;
      P.w_bool w taken)
    f.fd_trail;
  P.w_str w f.fd_suggestion

let r_finding r =
  let rule_id = P.r_str r in
  let fd_rule =
    match Taxonomy.of_id rule_id with
    | Some t -> t
    | None -> P.fail "verify: unknown rule id %S" rule_id
  in
  let fd_insn = R.sleb128 r in
  let fd_msg = P.r_str r in
  let fd_window =
    P.r_list r (fun r ->
        let i = R.uleb128 r in
        let l = P.r_str r in
        (i, l))
  in
  let fd_regs =
    P.r_list r (fun r ->
        let a = P.r_str r in
        let b = P.r_str r in
        (a, b))
  in
  let fd_trail =
    P.r_list r (fun r ->
        let i = R.uleb128 r in
        let taken = P.r_bool r in
        (i, taken))
  in
  let fd_suggestion = P.r_str r in
  { fd_rule; fd_insn; fd_msg; fd_window; fd_regs; fd_trail; fd_suggestion }

let w_prog w pr =
  P.w_str w pr.pr_name;
  P.w_str w pr.pr_section;
  W.uleb128 w pr.pr_insns;
  P.w_opt w w_finding pr.pr_finding

let r_prog r =
  let pr_name = P.r_str r in
  let pr_section = P.r_str r in
  let pr_insns = R.uleb128 r in
  let pr_finding = P.r_opt r r_finding in
  { pr_name; pr_section; pr_insns; pr_finding }

let encode rep =
  let w = W.create () in
  P.w_str w rep.rp_obj;
  P.w_opt w P.w_str rep.rp_kernel;
  P.w_str w rep.rp_digest;
  P.w_list w w_prog rep.rp_progs;
  P.w_list w w_diag rep.rp_diags;
  W.contents w

let decode_exn data =
  let r = R.of_string data in
  let rp_obj = P.r_str r in
  let rp_kernel = P.r_opt r P.r_str in
  let rp_digest = P.r_str r in
  let rp_progs = P.r_list r r_prog in
  let rp_diags = P.r_list r r_diag in
  P.expect_eof r;
  { rp_obj; rp_kernel; rp_digest; rp_progs; rp_diags }

let decode data =
  try decode_exn data
  with Bytesio.Truncated what -> P.fail "verify: truncated payload (%s)" what

let store_key ds ~image ~digest =
  Depsurf.Dataset.cache_key ds ~label:"verify"
    [ image; digest; "c" ^ string_of_int codec_version ]

(* single flight across domains, keyed by the content-addressed store
   key so distinct datasets/objects never collide *)
let memo : (string, report) Par.Memo.t = Par.Memo.create 16

let of_dataset ds v cfg bytes =
  let kernel = Depsurf.Dataset.vmlinux ds v cfg in
  let key = store_key ds ~image:(Vmlinux.tag kernel) ~digest:(digest bytes) in
  Par.Memo.find_or_compute memo key (fun () ->
      Ds_store.Store.memo (Depsurf.Dataset.store ds) ~ns ~key ~encode ~decode
        ~cache_if:(fun r -> Diag.worst r.rp_diags <> Some Diag.Fatal)
        (fun () -> verify_bytes ~kernel bytes))

(* ------------------------------- views ------------------------------- *)

let findings rep =
  List.filter_map (fun pr -> Option.map (fun f -> (pr, f)) pr.pr_finding) rep.rp_progs

let finding_json f =
  Json.Obj
    [
      ("rule", Json.String (Taxonomy.id f.fd_rule));
      ("dependency_induced", Json.Bool (Taxonomy.dependency_induced f.fd_rule));
      ("insn", Json.Int f.fd_insn);
      ("msg", Json.String f.fd_msg);
      ("window", Json.List (List.map (fun (_, l) -> Json.String l) f.fd_window));
      ("regs", Json.Obj (List.map (fun (r, s) -> (r, Json.String s)) f.fd_regs));
      ( "trail",
        Json.List
          (List.map
             (fun (i, taken) ->
               Json.Obj [ ("insn", Json.Int i); ("taken", Json.Bool taken) ])
             f.fd_trail) );
      ("suggestion", Json.String f.fd_suggestion);
    ]

let prog_json pr =
  Json.Obj
    ([
       ("name", Json.String pr.pr_name);
       ("section", Json.String pr.pr_section);
       ("insns", Json.Int pr.pr_insns);
       ( "verdict",
         Json.String (match pr.pr_finding with None -> "accepted" | Some _ -> "rejected") );
     ]
    @ match pr.pr_finding with None -> [] | Some f -> [ ("rejection", finding_json f) ])

let report_json rep =
  let rejected = List.length (findings rep) in
  Json.Obj
    [
      ("object", Json.String rep.rp_obj);
      ("kernel", match rep.rp_kernel with Some k -> Json.String k | None -> Json.Null);
      ("digest", Json.String rep.rp_digest);
      ("accepted", Json.Int (List.length rep.rp_progs - rejected));
      ("rejected", Json.Int rejected);
      ("programs", Json.List (List.map prog_json rep.rp_progs));
    ]

let envelope rep = Depsurf.Api.of_diags ~data:(report_json rep) rep.rp_diags

let render rep =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "object %s  digest %s%s\n" rep.rp_obj
    (String.sub rep.rp_digest 0 (min 12 (String.length rep.rp_digest)))
    (match rep.rp_kernel with Some k -> "  kernel " ^ k | None -> "");
  List.iter
    (fun pr ->
      match pr.pr_finding with
      | None -> pf "  %-24s %-36s ok (%d insns)\n" pr.pr_name pr.pr_section pr.pr_insns
      | Some f ->
          pf "  %-24s %-36s REJECTED: %s\n" pr.pr_name pr.pr_section (Taxonomy.id f.fd_rule);
          pf "      %s\n"
            (if f.fd_insn >= 0 then Printf.sprintf "at insn %d: %s" f.fd_insn f.fd_msg
             else f.fd_msg);
          List.iter
            (fun (i, l) -> pf "      %s%s\n" l (if i = f.fd_insn then "   <-- here" else ""))
            f.fd_window;
          (let live = List.filter (fun (_, s) -> s <> "uninit") f.fd_regs in
           if live <> [] then
             pf "      regs: %s\n"
               (String.concat " " (List.map (fun (r, s) -> r ^ "=" ^ s) live)));
          if f.fd_trail <> [] then
            pf "      path: %s\n"
              (String.concat " -> "
                 (List.map
                    (fun (i, taken) ->
                      Printf.sprintf "%d:%s" i (if taken then "taken" else "fall"))
                    f.fd_trail));
          pf "      hint: %s\n" f.fd_suggestion)
    rep.rp_progs;
  Buffer.contents buf

(* --------------------------- fuzz campaigns -------------------------- *)

type campaign = {
  cp_total : int;
  cp_accepted : int;
  cp_rejected : int;
  cp_crashed : (string * string) list;
  cp_unclassified : int;
  cp_rules : (string * int) list;
}

let merge a b =
  let tally =
    List.fold_left
      (fun acc (k, v) ->
        (k, v + Option.value ~default:0 (List.assoc_opt k acc))
        :: List.remove_assoc k acc)
      a.cp_rules b.cp_rules
  in
  {
    cp_total = a.cp_total + b.cp_total;
    cp_accepted = a.cp_accepted + b.cp_accepted;
    cp_rejected = a.cp_rejected + b.cp_rejected;
    cp_crashed = a.cp_crashed @ b.cp_crashed;
    cp_unclassified = a.cp_unclassified + b.cp_unclassified;
    cp_rules = List.sort compare tally;
  }

(* a finding "classifies" when its rule id round-trips through the
   closed taxonomy and it carries a suggestion — the no-leak contract *)
let classified f =
  Taxonomy.of_id (Taxonomy.id f.fd_rule) = Some f.fd_rule && f.fd_suggestion <> ""

let run_campaign muts check =
  let total = ref 0 and accepted = ref 0 and rejected = ref 0 in
  let unclassified = ref 0 in
  let crashed = ref [] in
  let rules : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (m : Ds_faultgen.Faultgen.mutation) ->
      incr total;
      match check m.Ds_faultgen.Faultgen.mut_bytes with
      | exception e -> crashed := (m.Ds_faultgen.Faultgen.mut_name, Printexc.to_string e) :: !crashed
      | [] -> incr accepted
      | fs ->
          incr rejected;
          List.iter
            (fun f ->
              if not (classified f) then incr unclassified
              else begin
                let id = Taxonomy.id f.fd_rule in
                Hashtbl.replace rules id
                  (1 + Option.value ~default:0 (Hashtbl.find_opt rules id))
              end)
            fs)
    muts;
  {
    cp_total = !total;
    cp_accepted = !accepted;
    cp_rejected = !rejected;
    cp_crashed = List.rev !crashed;
    cp_unclassified = !unclassified;
    cp_rules = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) rules []);
  }

let campaign_insns ?count ~seed (p : Obj.prog) =
  let data = Insn.encode p.Obj.p_insns in
  let muts = Ds_faultgen.Faultgen.bytecode_mutations ?count ~seed data in
  run_campaign muts (fun bytes ->
      match verify_stream ~section:p.Obj.p_section bytes with
      | None -> []
      | Some f -> [ f ])

let campaign_obj ?count ~seed ?kernel bytes =
  let muts = Ds_faultgen.Faultgen.mutations ?count ~seed bytes in
  run_campaign muts (fun b -> List.map snd (findings (verify_bytes ?kernel b)))
