(** The closed taxonomy of load-time rejections.

    One constructor per distinct way a program can fail to load: the
    seventeen {!Ds_bpf.Verifier.rule}s, the two structural kfunc checks
    the loader performs after verification (index out of range, name
    absent from the target kernel's BTF), and a malformed instruction
    stream that never decoded at all. Every rejection {!Verify} produces
    carries exactly one of these — the fuzz harness asserts the set is
    closed (no "unclassified" leaks) by round-tripping {!id}/{!of_id}.

    Rules split into {e program-induced} (the bytecode is wrong on any
    kernel) and {e dependency-induced} (the program is fine, the target
    kernel lacks the helper/kfunc — the paper's instability surface).
    For the latter, {!suggestion} consults {!Depsurf.Compat}'s stable
    probe registry and names the probe that would bridge the gap. *)

type t =
  | Empty_program
  | Size_cap
  | No_exit
  | Invalid_register
  | Uninit_register
  | Write_r10
  | Ctx_oob
  | Stack_oob_read
  | Stack_oob_write
  | Scalar_deref
  | Ctx_write
  | Bad_store_target
  | Unknown_helper
  | Backward_jump
  | Jump_oob
  | Uninit_r0_exit
  | Path_explosion
  | Kfunc_index_oob  (** [Kfunc_call i] with no i-th kfunc table entry *)
  | Unknown_kfunc  (** kfunc name absent from the target kernel's BTF *)
  | Malformed_insn  (** the stream never decoded ({!Ds_bpf.Insn.Bad_insn}) *)

val all : t list
(** Every rule, in declaration order. *)

val id : t -> string
(** Stable kebab-case identifier, e.g. ["unsafe-load-scalar"]; the key
    used in JSON reports, [depsurf mutate --survey] tallies and the
    fuzz-campaign tallies. *)

val of_id : string -> t option
(** Inverse of {!id}. *)

val describe : t -> string
(** One-line description for the taxonomy table. *)

val of_verifier : Ds_bpf.Verifier.rule -> t
(** Embed the verifier's rules (a 1:1 mapping). *)

val dependency_induced : t -> bool
(** True for {!Unknown_helper} and {!Unknown_kfunc}: the program would
    load on a kernel that has the dependency. *)

val suggestion : ?section:string -> ?detail:string -> t -> string
(** The {e suggested bridge}: a concrete rewrite or mitigation for each
    rule ("route the scalar through [bpf_probe_read]", "hoist the bound
    check before the load", ...). [detail] names the missing helper or
    kfunc; for dependency-induced rules with a [section] (the program's
    attach section), the {!Depsurf.Compat} registry is consulted and the
    covering stable probe, when one exists, is appended to the hint. *)
