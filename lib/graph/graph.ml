open Ds_util
open Ds_ksrc
module Surface = Depsurf.Surface
module Depset = Depsurf.Depset
module Ctype = Ds_ctypes.Ctype
module Decl = Ds_ctypes.Decl
module P = Depsurf.Codec.Prim
module W = Bytesio.Writer
module R = Bytesio.Reader

type t = {
  g_tag : string;
  g_nodes : Depset.dep array;  (* sorted by Depset.compare_dep, unique *)
  g_fwd : int array array;  (* per node id: sorted unique target ids *)
  g_rev : int array array;  (* derived from g_fwd *)
  g_ids : (Depset.dep, int) Hashtbl.t;
}

let tag g = g.g_tag
let n_nodes g = Array.length g.g_nodes
let n_edges g = Array.fold_left (fun acc adj -> acc + Array.length adj) 0 g.g_fwd

(* ------------------------- edge extraction --------------------------- *)

(* struct/union names referenced anywhere in a type; typedefs are opaque
   names here (no definition to follow), enums carry no layout *)
let rec struct_refs acc (t : Ctype.t) =
  match t with
  | Struct_ref s | Union_ref s -> s :: acc
  | Ptr t | Array (t, _) | Const t | Volatile t -> struct_refs acc t
  | Func_proto p -> proto_refs acc p
  | Void | Int _ | Float _ | Enum_ref _ | Typedef_ref _ -> acc

and proto_refs acc (p : Ctype.proto) =
  List.fold_left
    (fun acc (pa : Ctype.param) -> struct_refs acc pa.ptype)
    (struct_refs acc p.ret)
    p.params

(* nodes and edges contributed by one construct; [X -> Y] = X depends
   on Y, so a caller depends on its callee and a probe on a function
   transitively depends on everything that function's change surface
   covers *)
let func_items (fe : Surface.func_entry) =
  let self = Depset.Dep_func fe.fe_name in
  let edges = ref [] in
  List.iter (fun c -> edges := (Depset.Dep_func c, self) :: !edges) fe.fe_callers;
  List.iter
    (fun (is : Surface.inline_site) ->
      edges := (Depset.Dep_func is.is_caller, self) :: !edges)
    fe.fe_inline_sites;
  List.iter
    (fun s -> edges := (self, Depset.Dep_struct s) :: !edges)
    (proto_refs [] (Surface.representative_proto fe));
  ([ self ], !edges)

let struct_items (sd : Decl.struct_def) =
  let self = Depset.Dep_struct sd.sname in
  let nodes = ref [ self ] in
  let edges = ref [] in
  List.iter
    (fun (f : Decl.field) ->
      let fd = Depset.Dep_field (sd.sname, f.fname) in
      nodes := fd :: !nodes;
      edges := (fd, self) :: !edges;
      List.iter
        (fun r ->
          let rn = Depset.Dep_struct r in
          (* layout dependence for the struct, reach-through for the field *)
          edges := (self, rn) :: (fd, rn) :: !edges)
        (struct_refs [] f.ftype))
    sd.fields;
  (!nodes, !edges)

let tp_items (te : Surface.tp_entry) =
  let self = Depset.Dep_tracepoint te.te_name in
  let nodes = ref [ self ] in
  let edges = ref [] in
  (match te.te_event_struct with
  | Some es ->
      edges := (self, Depset.Dep_struct es.sname) :: !edges;
      (* event structs are excluded from s_structs: contribute their
         field/layout edges here *)
      let n, e = struct_items es in
      nodes := n @ !nodes;
      edges := e @ !edges
  | None -> ());
  (match te.te_func with
  | Some (fd : Decl.func_decl) ->
      List.iter
        (fun s -> edges := (self, Depset.Dep_struct s) :: !edges)
        (proto_refs [] fd.proto)
  | None -> ());
  (!nodes, !edges)

let syscall_items (s : Surface.t) name =
  let self = Depset.Dep_syscall name in
  let impl = Ds_kcc.Compile.syscall_symbol s.Surface.s_arch name in
  match Surface.find_func s impl with
  | Some _ -> ([ self ], [ (self, Depset.Dep_func impl) ])
  | None -> ([ self ], [])

(* ------------------------------ build -------------------------------- *)

let builds = Atomic.make 0
let build_count () = Atomic.get builds

let compare_edge (a1, b1) (a2, b2) =
  match Depset.compare_dep a1 a2 with 0 -> Depset.compare_dep b1 b2 | c -> c

let finish ~tag ~nodes ~fwd =
  let ids = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun i d -> Hashtbl.replace ids d i) nodes;
  let n = Array.length nodes in
  let rev_lists = Array.make n [] in
  Array.iteri (fun i adj -> Array.iter (fun j -> rev_lists.(j) <- i :: rev_lists.(j)) adj) fwd;
  (* fwd is scanned in ascending source order, so each reverse list is
     built descending — reverse restores sorted order *)
  let rev = Array.map (fun l -> Array.of_list (List.rev l)) rev_lists in
  { g_tag = tag; g_nodes = nodes; g_fwd = fwd; g_rev = rev; g_ids = ids }

let build ?pool (s : Surface.t) =
  Ds_trace.Trace.span ~name:"graph.build" ~attrs:[ ("image", Surface.tag s) ] @@ fun () ->
  Atomic.incr builds;
  let map : 'a 'b. ('a -> 'b) -> 'a list -> 'b list =
   fun f xs -> match pool with Some p -> Par.map_list_chunked p f xs | None -> List.map f xs
  in
  let items =
    map func_items s.Surface.s_funcs
    @ map struct_items s.Surface.s_structs
    @ map tp_items s.Surface.s_tracepoints
    @ List.map (syscall_items s) s.Surface.s_syscalls
  in
  (* sorting makes the result a pure function of the surface: identical
     bytes whatever the chunking or pool size of the fan-out *)
  let edges = List.sort_uniq compare_edge (List.concat_map snd items) in
  let nodes =
    List.concat_map fst items
    @ List.concat_map (fun (a, b) -> [ a; b ]) edges
    |> List.sort_uniq Depset.compare_dep
    |> Array.of_list
  in
  let ids = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun i d -> Hashtbl.replace ids d i) nodes;
  let fwd_lists = Array.make (Array.length nodes) [] in
  List.iter
    (fun (a, b) ->
      let ia = Hashtbl.find ids a and ib = Hashtbl.find ids b in
      if ia <> ib then fwd_lists.(ia) <- ib :: fwd_lists.(ia))
    edges;
  (* edges were sorted ascending and prepended: reverse restores order *)
  let fwd = Array.map (fun l -> Array.of_list (List.rev l)) fwd_lists in
  Ds_trace.Trace.set_attr "nodes" (string_of_int (Array.length nodes));
  finish ~tag:(Surface.tag s) ~nodes ~fwd

(* ------------------------------ queries ------------------------------ *)

let node_id g d = Hashtbl.find_opt g.g_ids d
let mem g d = Option.is_some (node_id g d)

let bfs adj start =
  let seen = Bytes.make (Array.length adj) '\000' in
  Bytes.set seen start '\001';
  let q = Queue.create () in
  Queue.push start q;
  let acc = ref [] in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    Array.iter
      (fun j ->
        if Bytes.get seen j = '\000' then begin
          Bytes.set seen j '\001';
          acc := j :: !acc;
          Queue.push j q
        end)
      adj.(i)
  done;
  !acc

let query g ~dir ~transitive d =
  Ds_trace.Trace.span ~name:"graph.query"
    ~attrs:
      [
        ("node", Depset.dep_to_string d);
        ("dir", match dir with `Deps -> "deps" | `Rdeps -> "rdeps");
      ]
  @@ fun () ->
  match node_id g d with
  | None -> None
  | Some i ->
      let adj = match dir with `Deps -> g.g_fwd | `Rdeps -> g.g_rev in
      let ids = if transitive then bfs adj i else Array.to_list adj.(i) in
      Some (List.sort Depset.compare_dep (List.map (fun j -> g.g_nodes.(j)) ids))

let rclosure g d = Option.value ~default:[] (query g ~dir:`Rdeps ~transitive:true d)

(* ---------------------------- persistence ---------------------------- *)

let codec_version = 1
let ns = "graph"

let encode g =
  let w = W.create () in
  P.w_str w g.g_tag;
  W.uleb128 w (Array.length g.g_nodes);
  Array.iter (P.w_dep w) g.g_nodes;
  Array.iter
    (fun adj ->
      W.uleb128 w (Array.length adj);
      Array.iter (W.uleb128 w) adj)
    g.g_fwd;
  W.contents w

let decode_exn data =
  let r = R.of_string data in
  let tag = P.r_str r in
  let n = R.uleb128 r in
  (* explicit in-order reads: Array.init's evaluation order is
     unspecified, and every element read is side-effecting *)
  let read_array k f =
    let rec go acc i = if i = 0 then List.rev acc else go (f () :: acc) (i - 1) in
    Array.of_list (go [] k)
  in
  let nodes = read_array n (fun () -> P.r_dep r) in
  let fwd =
    read_array n (fun () ->
        let k = R.uleb128 r in
        read_array k (fun () ->
            let j = R.uleb128 r in
            if j >= n then P.fail "graph: node id %d out of range" j;
            j))
  in
  P.expect_eof r;
  finish ~tag ~nodes ~fwd

(* reader underruns surface as [Bytesio.Truncated]; fold them into the
   codec's [Decode_error] discipline so callers need one handler *)
let decode data =
  try decode_exn data
  with Ds_util.Bytesio.Truncated what -> P.fail "graph: truncated payload (%s)" what

let store_key ds v cfg =
  Depsurf.Dataset.cache_key ds ~label:"graph"
    [ Version.to_string v; Config.to_string cfg; "c" ^ string_of_int codec_version ]

(* single flight across domains, keyed by the full content-addressed
   store key so distinct datasets never collide *)
let memo : (string, t) Par.Memo.t = Par.Memo.create 8

let of_dataset ?pool ds v cfg =
  let key = store_key ds v cfg in
  Par.Memo.find_or_compute memo key (fun () ->
      let surface = Depsurf.Dataset.surface ds v cfg in
      Ds_store.Store.memo (Depsurf.Dataset.store ds) ~ns ~key ~encode ~decode
        ~cache_if:(fun _ -> not (Surface.degraded surface))
        (fun () -> build ?pool surface))

(* ------------------------------- views ------------------------------- *)

let dep_json = Depsurf.Export.dep

let stats_json g =
  Json.Obj
    [
      ("image", Json.String g.g_tag);
      ("nodes", Json.Int (n_nodes g));
      ("edges", Json.Int (n_edges g));
    ]

let dir_name = function `Deps -> "deps" | `Rdeps -> "rdeps"

let query_json g ~dir ~transitive d =
  let results = query g ~dir ~transitive d in
  Json.Obj
    [
      ("image", Json.String g.g_tag);
      ("node", dep_json d);
      ("direction", Json.String (dir_name dir));
      ("transitive", Json.Bool transitive);
      ("found", Json.Bool (Option.is_some results));
      ("count", Json.Int (match results with None -> 0 | Some l -> List.length l));
      ("results", Json.List (List.map dep_json (Option.value ~default:[] results)));
    ]

let query_table g ~dir ~transitive d =
  match query g ~dir ~transitive d with
  | None ->
      Printf.sprintf "%s: node %s not in graph (%d nodes)\n" g.g_tag (Depset.dep_to_string d)
        (n_nodes g)
  | Some results ->
      let tt =
        Texttable.create
          ~title:
            (Printf.sprintf "%s of %s on %s (%s, %d)" (dir_name dir) (Depset.dep_to_string d)
               g.g_tag
               (if transitive then "transitive" else "direct")
               (List.length results))
          [ ("kind", Texttable.L); ("name", Texttable.L) ]
      in
      List.iter
        (fun dep ->
          let s = Depset.dep_to_string dep in
          match Strutil.cut ~on:':' s with
          | Some (k, n) -> Texttable.row tt [ k; n ]
          | None -> Texttable.row tt [ ""; s ])
        results;
      Texttable.render tt
