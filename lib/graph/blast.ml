open Ds_util
open Ds_ksrc
module Depset = Depsurf.Depset
module Diff = Depsurf.Diff

type affected = { af_name : string; af_subsystem : string; af_via : Depset.dep list }

type result = {
  bl_node : Depset.dep;
  bl_release : Version.t;
  bl_prev : Version.t;
  bl_removed : bool;
  bl_reasons : string list;
  bl_closure_size : int;
  bl_affected : affected list;
}

let prev_of release =
  let rec go = function
    | a :: b :: _ when Version.equal b release -> Some a
    | _ :: tl -> go tl
    | [] -> None
  in
  go Version.all

(* did this construct disappear or change in the prev -> release diff,
   and why (human-readable, as Diff describes them)? *)
let fate_of (d : Diff.t) (node : Depset.dep) =
  let changed assoc describe name =
    match List.assoc_opt name assoc with Some cs -> List.map describe cs | None -> []
  in
  match node with
  | Depset.Dep_func n ->
      ( List.mem n d.Diff.df_funcs.d_removed,
        changed d.Diff.df_funcs.d_changed Diff.describe_func_change n )
  | Depset.Dep_struct s ->
      ( List.mem s d.Diff.df_structs.d_removed,
        changed d.Diff.df_structs.d_changed Diff.describe_field_change s )
  | Depset.Dep_field (s, f) ->
      (* a field's fate is carried by its struct's change list *)
      let cs = Option.value ~default:[] (List.assoc_opt s d.Diff.df_structs.d_changed) in
      let mine =
        List.filter
          (function
            | Diff.Field_added f' | Diff.Field_removed f' | Diff.Field_type_changed (f', _, _)
              -> f' = f)
          cs
      in
      let removed =
        List.mem s d.Diff.df_structs.d_removed
        || List.exists (function Diff.Field_removed f' -> f' = f | _ -> false) mine
      in
      (removed, List.map Diff.describe_field_change mine)
  | Depset.Dep_tracepoint t ->
      ( List.mem t d.Diff.df_tracepoints.d_removed,
        changed d.Diff.df_tracepoints.d_changed Diff.describe_tp_change t )
  | Depset.Dep_syscall s -> (List.mem s d.Diff.df_syscalls.d_removed, [])

let fate = fate_of

let closure g node = if Graph.mem g node then node :: Graph.rclosure g node else []

let hit_set g ~changed =
  let tbl = Hashtbl.create 256 in
  List.iter (fun node -> List.iter (fun d -> Hashtbl.replace tbl d ()) (closure g node)) changed;
  tbl

let hits g ~changed deps =
  let tbl = hit_set g ~changed in
  List.filter (Hashtbl.mem tbl) deps

let query ?pool ds ~release node =
  match prev_of release with
  | None ->
      Error
        (Printf.sprintf
           "release %s has no predecessor in the study matrix (known: %s .. %s)"
           (Version.to_string release)
           (Version.to_string (List.hd Version.all))
           (Version.to_string (List.hd (List.rev Version.all))))
  | Some prev ->
      Ds_trace.Trace.span ~name:"graph.blast"
        ~attrs:
          [ ("node", Depset.dep_to_string node); ("release", Version.to_string release) ]
      @@ fun () ->
      let cfg = Config.x86_generic in
      (* the closure is computed on the graph of the surface programs
         were still working against: the previous release *)
      let g = Graph.of_dataset ?pool ds prev cfg in
      let closure = closure g node in
      let in_closure = hit_set g ~changed:[ node ] in
      let old_s = Depsurf.Dataset.surface ds prev cfg in
      let new_s = Depsurf.Dataset.surface ds release cfg in
      let diff = Diff.compare_surfaces Diff.Across_versions old_s new_s in
      let removed, reasons = fate_of diff node in
      let affected =
        List.filter_map
          (fun ((pr : Ds_corpus.Table7.profile), obj) ->
            let via = List.filter (Hashtbl.mem in_closure) (Depset.of_obj obj) in
            if via = [] then None
            else
              Some { af_name = pr.pr_name; af_subsystem = pr.pr_subsystem; af_via = via })
          (Ds_corpus.Corpus.build_all ds ())
      in
      Ok
        {
          bl_node = node;
          bl_release = release;
          bl_prev = prev;
          bl_removed = removed;
          bl_reasons = reasons;
          bl_closure_size = List.length closure;
          bl_affected = affected;
        }

let json r =
  Json.Obj
    [
      ("node", Depsurf.Export.dep r.bl_node);
      ("release", Json.String (Version.to_string r.bl_release));
      ("prev", Json.String (Version.to_string r.bl_prev));
      ("removed", Json.Bool r.bl_removed);
      ("reasons", Json.List (List.map (fun s -> Json.String s) r.bl_reasons));
      ("closure_size", Json.Int r.bl_closure_size);
      ("affected_count", Json.Int (List.length r.bl_affected));
      ( "affected",
        Json.List
          (List.map
             (fun a ->
               Json.Obj
                 [
                   ("program", Json.String a.af_name);
                   ("subsystem", Json.String a.af_subsystem);
                   ("via", Depsurf.Export.dep_list a.af_via);
                 ])
             r.bl_affected) );
    ]

let table r =
  let tt =
    Texttable.create
      ~title:
        (Printf.sprintf "blast radius of %s in %s (diff %s -> %s): %s%s, closure %d, %d program(s) affected"
           (Depset.dep_to_string r.bl_node)
           (Version.to_string r.bl_release)
           (Version.to_string r.bl_prev)
           (Version.to_string r.bl_release)
           (if r.bl_removed then "removed" else if r.bl_reasons <> [] then "changed" else "unchanged")
           (match r.bl_reasons with [] -> "" | rs -> " (" ^ String.concat "; " rs ^ ")")
           r.bl_closure_size (List.length r.bl_affected))
      [ ("program", Texttable.L); ("subsystem", Texttable.L); ("via", Texttable.R); ("through", Texttable.L) ]
  in
  List.iter
    (fun a ->
      (* keep the column readable: tracee-sized via lists run to dozens *)
      let shown = List.filteri (fun i _ -> i < 4) a.af_via in
      let through =
        String.concat ", " (List.map Depset.dep_to_string shown)
        ^
        match List.length a.af_via - List.length shown with
        | 0 -> ""
        | more -> Printf.sprintf ", ... (+%d)" more
      in
      Texttable.row tt
        [ a.af_name; a.af_subsystem; string_of_int (List.length a.af_via); through ])
    r.bl_affected;
  Texttable.render tt
