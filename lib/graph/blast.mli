(** Blast-radius queries: which corpus programs break, transitively, if
    a symbol changes (or is removed) in a given release?

    The answer intersects two things the repo already computes — the
    reverse dependency closure of the symbol in the {e previous}
    release's graph (the surface programs were written against), and
    the declaration diff between that release and the queried one
    ({!Depsurf.Diff}, the machinery behind the paper's Tables 1/3/4/5).
    A corpus program is affected when any dependency of its object file
    ({!Depsurf.Depset.of_obj}) lands in the closure: directly (it hooks
    or reads the symbol) or transitively (it probes a caller, reads a
    struct embedding the changed struct, ...). *)

open Ds_ksrc

type affected = {
  af_name : string;  (** corpus program (Table 7 row) *)
  af_subsystem : string;
  af_via : Depsurf.Depset.dep list;
      (** the program's own dependencies that fall inside the closure,
          sorted; always non-empty *)
}

type result = {
  bl_node : Depsurf.Depset.dep;
  bl_release : Version.t;  (** the release being queried *)
  bl_prev : Version.t;  (** its predecessor: diff is prev -> release *)
  bl_removed : bool;  (** the construct disappeared in [bl_release] *)
  bl_reasons : string list;
      (** human-readable change reasons from the diff; empty when the
          construct is unchanged in this pair *)
  bl_closure_size : int;
      (** reverse closure size, the queried node included *)
  bl_affected : affected list;  (** in Table 7 (paper) order *)
}

val fate : Depsurf.Diff.t -> Depsurf.Depset.dep -> bool * string list
(** [(removed, change reasons)] of one construct in a release diff —
    the per-node view {!query} reports as [bl_removed]/[bl_reasons],
    shared with the watch tier's per-event reason lines. *)

val closure : Graph.t -> Depsurf.Depset.dep -> Depsurf.Depset.dep list
(** The node plus its reverse dependency closure in the given graph;
    [[]] when the node is absent. *)

val hit_set : Graph.t -> changed:Depsurf.Depset.dep list -> (Depsurf.Depset.dep, unit) Hashtbl.t
(** Union of {!closure} over [changed]: every construct transitively
    affected when those constructs disappear or change. *)

val hits :
  Graph.t -> changed:Depsurf.Depset.dep list -> Depsurf.Depset.dep list -> Depsurf.Depset.dep list
(** [hits g ~changed deps]: the subset of [deps] (order preserved)
    falling in {!hit_set} — the intersection primitive behind both
    {!query}'s per-program [af_via] lists and the watch tier's
    subscription matching. *)

val query :
  ?pool:Ds_util.Par.pool ->
  Depsurf.Dataset.t ->
  release:Version.t ->
  Depsurf.Depset.dep ->
  (result, string) Stdlib.result
(** [Error] on a release outside the study matrix (or its first entry,
    which has no predecessor). A node absent from the graph still
    answers [Ok] with an empty closure and no affected programs. The
    graph comes from {!Graph.of_dataset} (memoized, store-backed); the
    corpus objects from {!Ds_corpus.Corpus.build_all} (store-backed
    under the ["obj"] namespace). *)

val json : result -> Ds_util.Json.t
(** The wire view shared byte-for-byte by [depsurf graph blast --json]
    and [/v1/graph/blast]. *)

val table : result -> string
(** Human-readable rendering. *)
