(** The transitive dependency graph of one kernel image (the ROADMAP's
    "dependency-graph engine"): every construct an eBPF program can hook
    or read — functions, structs, fields, tracepoints, syscalls — as
    nodes, with a directed edge [X -> Y] meaning {e X depends on Y} (a
    change to [Y] can affect [X]).

    Point lookups ({!Depsurf.Surface}, {!Depsurf.Diff}) answer "did this
    symbol change"; the graph answers the paper's closure question:
    everything that {e reaches} a changed symbol is at risk, including
    programs whose probe target merely calls it. Edges come from the
    data the pipeline already extracts:

    - caller -> callee, from [fe_callers] (direct calls) and
      [fe_inline_sites] (inlined bodies) of the DWARF surface;
    - function -> struct, from the struct/union references of the
      representative prototype;
    - field -> its struct, and struct -> the structs its field types
      reference (layout dependence);
    - tracepoint -> event struct and the structs of the
      tracing-function prototype;
    - syscall -> its arch-prefixed implementation function (via
      {!Ds_kcc.Compile.syscall_symbol}), when the image has one.

    The node identity is {!Depsurf.Depset.dep}, so graph answers
    intersect directly with program dependency sets; the canonical
    string syntax is {!Depsurf.Depset.dep_to_string}'s ["kind:name"].

    Determinism contract: nodes and adjacency are sorted, so the graph
    — and its {!encode} bytes — are identical whatever the pool size or
    chunking of the build fan-out. *)

open Ds_ksrc

type t
(** An immutable graph: sorted node array, forward and reverse adjacency
    (both by dense node id), plus an id index. *)

val build : ?pool:Ds_util.Par.pool -> Depsurf.Surface.t -> t
(** Construct the graph for one surface. With [pool], per-construct edge
    extraction fans out through {!Ds_util.Par.map_list_chunked} (result
    identical to the sequential build). Increments {!build_count}. *)

val build_count : unit -> int
(** Process-wide number of graphs actually constructed (decoding a
    stored graph does not count) — the bench asserts this stays flat
    across a warm run. *)

val tag : t -> string
(** The source surface's image tag (e.g. ["v5.4-x86-generic"]). *)

val n_nodes : t -> int
val n_edges : t -> int

val mem : t -> Depsurf.Depset.dep -> bool

val query :
  t ->
  dir:[ `Deps | `Rdeps ] ->
  transitive:bool ->
  Depsurf.Depset.dep ->
  Depsurf.Depset.dep list option
(** [`Deps] follows edges forward (what the node depends on), [`Rdeps]
    backward (what depends on the node — the blast direction).
    [transitive:false] returns direct neighbours only; [true] the full
    closure, start node excluded. Results are sorted by
    {!Depsurf.Depset.compare_dep}; [None] when the node is not in the
    graph. *)

val rclosure : t -> Depsurf.Depset.dep -> Depsurf.Depset.dep list
(** [query ~dir:`Rdeps ~transitive:true], defaulting to [[]] for an
    unknown node — the reverse closure used by blast-radius queries. *)

(** {2 Persistence (the {!Ds_store} ["graph"] namespace)} *)

val codec_version : int
(** Bumping it invalidates stored graphs (it participates in the store
    key). *)

val ns : string
(** The store namespace, ["graph"]. *)

val encode : t -> string
val decode : string -> t
(** Raises {!Depsurf.Codec.Decode_error} on a malformed payload; the
    store treats that as a corrupt entry and recomputes. *)

val store_key : Depsurf.Dataset.t -> Version.t -> Config.t -> string
(** The content-addressed key binding seed, scale, codec versions and
    the image identity. *)

val of_dataset :
  ?pool:Ds_util.Par.pool -> Depsurf.Dataset.t -> Version.t -> Config.t -> t
(** The memoized entry point: an in-process {!Ds_util.Par.Memo} (single
    flight across domains) over the {!Ds_store.Store.memo} persistent
    tier, so a process builds each image's graph at most once and a warm
    store serves later processes without any rebuild. Graphs of degraded
    surfaces are computed but not persisted. *)

(** {2 Views} *)

val stats_json : t -> Ds_util.Json.t
(** [{image; nodes; edges}] — the serve/CLI graph identity block. *)

val query_json :
  t ->
  dir:[ `Deps | `Rdeps ] ->
  transitive:bool ->
  Depsurf.Depset.dep ->
  Ds_util.Json.t
(** The wire view shared byte-for-byte by [depsurf graph deps|rdeps
    --json] and [/v1/graph/deps|rdeps]: image, node, direction,
    transitive flag, found flag, count and the sorted results. *)

val query_table :
  t ->
  dir:[ `Deps | `Rdeps ] ->
  transitive:bool ->
  Depsurf.Depset.dep ->
  string
(** Human-readable rendering of the same answer. *)
