(** The serve response-byte cache: an LRU of fully serialized responses.

    A warm hit returns the exact bytes (status, content-type, body) plus
    the strong ETag computed over them when the entry was filled, so the
    request skips the Export → JSON → envelope pipeline entirely. The
    {e caller} builds keys — [Serve] keys on (endpoint segments,
    normalized query params, index generation), so bumping the
    generation makes every older entry unreachable; stale entries then
    age out through the LRU. Thread-safe (one mutex; all operations are
    O(1) plus hashing). *)

type entry = {
  e_status : int;
  e_ctype : string;
  e_body : string;
  e_etag : string;  (** strong ETag, quoted, digest of the body bytes *)
}

type t

val create : ?max_entries:int -> ?max_bytes:int -> unit -> t
(** Defaults: 512 entries, 64 MiB of cached bytes (body-dominated
    accounting). Eviction is strictly LRU, driven by whichever cap is
    exceeded. Raises [Invalid_argument] on non-positive caps. *)

val find : t -> string -> entry option
(** Lookup; a hit moves the entry to the most-recently-used position. *)

val add : t -> string -> entry -> int
(** Insert (replacing any entry under the same key) and evict from the
    LRU tail until both caps hold again; returns the number of entries
    evicted. An entry larger than the byte cap is not stored (returns
    0). *)

val stats : t -> int * int
(** [(entries, bytes)] currently cached. *)
