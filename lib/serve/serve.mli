(** [ds_serve]: the dependency-surface query service behind
    [depsurf serve].

    DepSurf's consumers — verifier-diagnostic tools, supply-chain
    monitors, CI gates — ask {e per-object, per-kernel} questions
    ("does this BPF object still attach on 6.8?", "what changed between
    these two LTS images?"), which is a query workload, not a batch
    workload. This module turns the batch pipeline into a long-running
    server:

    - a minimal hand-rolled HTTP/1.1 + JSON protocol over Unix or TCP
      sockets (no external dependencies);
    - a concurrent accept loop on the existing {!Ds_util.Par} domain
      pool — one worker runs the listener, the rest handle connections;
    - a warm {e in-memory hot index} (image → rendered surface document,
      pair → rendered diff, object digest → rendered mismatch report)
      hydrated lazily through the dataset's memo tables and the
      {!Ds_store} persistent tier, so the first query for an artifact
      pays the compile/extract cost once and every later query is a
      string lookup;
    - single-flight hydration: concurrent requests for the same uncached
      artifact coalesce into one computation via {!Ds_util.Par.Memo};
    - a {e response-byte cache} ({!Respcache}) in front of the hot
      index: cacheable GETs ([/images], [/surface/...], [/diff/...])
      are stored as fully serialized envelope+body bytes keyed by
      (endpoint, normalized params, index generation), so a warm hit
      skips Export → JSON → envelope entirely; every cacheable response
      carries a strong [ETag] (content digest over the cached bytes)
      and an [x-depsurf-cache: hit|miss] header, and a matching
      [If-None-Match] answers [304 Not Modified] with an empty body;
    - per-endpoint metrics ({!Ds_util.Metrics}): request counters,
      error counters, cache hit/miss/evict counters, and latency
      histograms with p50/p95/p99.

    Endpoints (canonically under [/v1/...]; the bare legacy paths are
    kept as byte-identical aliases — both forms dispatch to the same
    handler and share the same cached body):

    - [GET /v1/healthz] — liveness + index occupancy;
    - [GET /v1/images] — every queryable image (study matrix + extra
      on-disk images);
    - [GET /v1/surface/<image>] — a full surface document, health
      included (degraded images answer HTTP 200 with
      ["health": "degraded"], never a 500);
      [?kind=func|struct|tracepoint|syscall&name=X] narrows to one
      construct;
    - [GET /v1/diff/<a>/<b>] — the pairwise declaration diff;
    - [GET /v1/graph/deps/<node>], [GET /v1/graph/rdeps/<node>] — the
      dependency graph's forward/reverse neighbours of a node (canonical
      ["kind:name"] syntax, bare names meaning [func:]);
      [?image=5.4-x86-generic] (the default) picks the image,
      [?transitive=1] the full closure. Unknown nodes answer 200 with
      ["found": false];
    - [GET /v1/graph/blast/<node>?release=X.Y] — the blast radius: the
      corpus programs transitively affected if the node changes (or is
      removed) in release X.Y, via the reverse closure on the previous
      release's graph intersected with each program's dependency set;
    - [POST /v1/mismatch] — body: raw BPF object bytes; response: the
      per-image dependency-mismatch report ([text/plain]),
      byte-identical to [depsurf report] for the same object;
      [?suggest=1] appends stable-probe suggestions from the
      {!Depsurf.Compat} registry;
    - [POST /v1/verify] — body: raw BPF object bytes; response: the
      structured verifier-rejection report ({!Ds_verify.Verify}) in the
      envelope, byte-identical to [depsurf doctor --json] for the same
      object; [?image=5.4-x86-generic] (the default) picks the study
      kernel whose BTF kfunc names are checked against. A rejected
      program is data, not an error: the response is 200 with
      [health: "degraded"]. Responses are cached (and [ETag]-tagged) by
      (image, body digest), so repeat posts of the same object hit the
      response cache and [If-None-Match] answers 304;
    - [GET /v1/metrics] — counters, latency histograms, store counters,
      compile count and index sizes;
    - [GET /v1/trace/recent] — most recently finished tracing spans
      ([?limit=N], default 100) plus the ring-drop counter;
    - [POST /v1/subscriptions] — register a watch subscription: a JSON
      body [{"deps": ["func:vfs_read", "struct:request", ...],
      "label": "..."}]. The id is content-addressed (digest of the
      canonical depset), so re-registering the same set is idempotent;
    - [GET /v1/subscriptions], [GET /v1/subscriptions/<id>],
      [DELETE /v1/subscriptions/<id>] — registry CRUD;
    - [POST /v1/watch/ingest?base=<image>&name=<label>] — incremental
      release ingest: body is a raw vmlinux image ([?kind=image], the
      default; lenient extraction) or a {!Depsurf.Codec}-encoded surface
      ([?kind=surface]). The release is stored as a {!Depsurf.Delta}
      against the base in the store's ["delta"] namespace (re-ingesting
      the same bytes is warm: no extraction, O(changed) ops), the
      delta's removed/changed constructs are intersected with every
      subscription — transitively, via {!Ds_graph.Blast} reverse
      closures — and one mismatch event is recorded per affected
      subscription;
    - [GET /v1/watch/<sub-id>?since=<cursor>&wait=<seconds>] — long-poll
      for mismatch events with [seq > since]: [200] with the events when
      some exist, otherwise the connection parks (deadline-bounded by
      the handle budget, admission-aware: parked pollers hold their
      admission slot but never a pool worker) until an ingest produces a
      matching event, the wait expires, or the server drains — the
      latter two answer a clean [204]. [wait=0] (the default) answers
      immediately.

    {b Mutation envelope.} The mutating endpoints ([POST /v1/mismatch],
    [POST /v1/verify], [POST /v1/subscriptions], [POST /v1/watch/ingest])
    also accept the {!Depsurf.Api.parse_mutation} request envelope
    [{"v": 1, "params": {...}, "body": <base64 | inline JSON>}] —
    envelope params override query-string params; bare bodies keep
    working byte-identically. Envelope validation failures answer a 400
    whose [diagnostics] list every problem.

    {b Legacy sunset.} The unprefixed legacy aliases answer with
    [Deprecation: true] and [Sunset] headers and count the
    [http.legacy_hits] metric; with [create ~legacy:false]
    ([depsurf serve --no-legacy-routes]) they answer 404 with a pointer
    to the [/v1] spelling.

    Every JSON response is wrapped in the versioned {!Depsurf.Api}
    envelope [{v; health; data; diagnostics}]. Every response carries an
    [x-depsurf-trace] header with the id of the request's
    ["serve.request"] span, and [?trace=1] on any JSON endpoint inlines
    that request's finished descendant spans under a ["trace"] member of
    the (enveloped) body. *)

open Ds_ksrc

type t
(** Server state: dataset + hot index + metrics. Independent of any
    socket, so tests can drive {!handle_request} directly. *)

type limits = {
  li_max_inflight : int;
      (** admission limit on accepted-but-unfinished connections;
          default 64, or [DEPSURF_MAX_INFLIGHT] *)
  li_read_timeout_s : float;
      (** whole-request receive budget (header + body), slowloris
          defence; default 10s *)
  li_handle_deadline_s : float;
      (** cooperative {!Ds_util.Deadline} on request handling; default
          30s, or [DEPSURF_DEADLINE_MS] / 1000 *)
  li_write_timeout_s : float;  (** per-socket send timeout; default 10s *)
  li_drain_deadline_s : float;
      (** how long {!stop} waits for in-flight connections; default 10s *)
}

val default_limits : unit -> limits
(** The defaults above, with [DEPSURF_MAX_INFLIGHT] and
    [DEPSURF_DEADLINE_MS] read from the environment. *)

val create :
  ?images_dir:string ->
  ?limits:limits ->
  ?legacy:bool ->
  ds:Depsurf.Dataset.t ->
  pool:Ds_util.Par.pool ->
  unit ->
  t
(** [images_dir]: serve surfaces (extracted leniently, on demand) for
    every [vmlinux-*] file in the directory, keyed by file name, in
    addition to the study matrix. The pool must have at least 2 workers
    when used with {!start} (one runs the accept loop). [limits]
    defaults to {!default_limits}. [legacy] (default [true]) keeps the
    unprefixed legacy routes; [false] sunsets them (404 with a pointer
    to [/v1]). *)

val watch : t -> Ds_watch.Watch.t
(** The server's subscription registry / ingest engine (shares the
    server's metrics registry and pool). *)

val parked_count : t -> int
(** Long-pollers currently parked (fd held, no worker). Exposed for
    tests and the bench. *)

val metrics : t -> Ds_util.Metrics.t
val dataset : t -> Depsurf.Dataset.t
val limits : t -> limits

val admission : t -> Admission.t
(** The admission-control state shared by the accept loop and every
    connection handler; its stats are the ["admission"] object of
    [/v1/metrics]. *)

val generation : t -> int
(** The current index generation, part of every response-cache key. *)

val invalidate : t -> unit
(** Bump the index generation: every cached response (and the ETag a
    client may hold for it) stops matching, and the next request for
    each key re-renders and re-caches. Index mutations must call this;
    today nothing mutates the index after {!create}, so it is driven by
    tests and future mutation endpoints. *)

val revalidate_store : t -> unit
(** Compare the dataset store's persisted maintenance generation
    ({!Ds_store.Store.maintenance_generation}) against the last value
    this server saw; when it moved (someone ran
    [depsurf cache clear]/[gc]/[verify] against a live server's cache
    directory), call {!invalidate} once so no response bytes keyed to
    the pre-maintenance store keep being served. No-op without a store.
    Called automatically on the cacheable-GET path, throttled to at
    most one generation-file read per second; exposed so tests (and
    maintenance run in-process) can trigger it deterministically. *)

val image_name : Version.t * Config.t -> string
(** URL name of a study image, e.g. ["5.4-x86-generic"]. *)

val image_of_name : string -> (Version.t * Config.t) option
(** Inverse of {!image_name}; [None] when not in the study matrix. *)

val handle_request :
  ?headers:(string * string) list ->
  ?pressure:Ds_util.Diag.severity ->
  t ->
  meth:string ->
  target:string ->
  body:string ->
  int * string * (string * string) list * string
(** Route and answer one request:
    [(status, content_type, headers, body)] where [headers] is the
    extra response headers (always including [x-depsurf-trace], plus
    [ETag] and [x-depsurf-cache] on cacheable GETs). [?headers] is the
    request headers as [(lowercased-name, value)] pairs; a matching
    [if-none-match] turns a cacheable response into an empty-body 304.
    [?pressure:Degraded] stamps the response with
    [x-depsurf-pressure: degraded] (the socket layer passes the
    admission pressure through). Handling runs under the configured
    {!limits} deadline: expiry answers a [503] envelope with
    [Retry-After] instead of running arbitrarily long. Never raises —
    internal errors become a 500 envelope. Exposed for unit tests and
    in-process callers. *)

(** {2 Socket front-end} *)

type addr =
  | Unix_sock of string  (** path of a Unix domain socket *)
  | Tcp of string * int  (** host, port; port [0] picks a free port *)

type handle

val start : t -> addr -> handle
(** Bind, listen, and submit the accept loop to the pool. Raises
    [Invalid_argument] on a pool with fewer than 2 workers (the loop
    would starve the connection handlers), [Unix.Unix_error] on bind
    failures. *)

val bound_addr : handle -> addr
(** The actual address — with [Tcp (host, 0)] the kernel-chosen port. *)

val stop : handle -> unit
(** Graceful drain, in order: stop accepting (join the accept loop),
    wait for every in-flight connection to finish — helping the pool's
    queue along — up to [li_drain_deadline_s], then close the listener
    last (and unlink a Unix socket path). Connections still running at
    the deadline are abandoned and counted under the [drain.abandoned]
    metric. The drain is recorded as a ["serve.drain"] span. Idempotent. *)

(** A minimal blocking HTTP/1.1 client for the same protocol: the load
    generator, the CLI's [depsurf query], and the e2e tests. *)
module Client : sig
  val request :
    ?body:string ->
    ?headers:(string * string) list ->
    ?timeout_s:float ->
    addr ->
    meth:string ->
    path:string ->
    int * string
  (** One request over a fresh connection; [(status, body)]. [body]
      present sends a [Content-Length] payload (used with [POST]);
      [headers] adds request headers (e.g.
      [("If-None-Match", etag)] for a conditional GET). [timeout_s]
      (default 30) bounds every socket send/receive and the
      drain-to-EOF of an unsized response body (which is also capped at
      16MiB). Raises [Unix.Unix_error] on connection failures and
      [Failure] on malformed responses. *)

  val request_full :
    ?body:string ->
    ?headers:(string * string) list ->
    ?timeout_s:float ->
    addr ->
    meth:string ->
    path:string ->
    int * (string * string) list * string
  (** Like {!request} but also returns the response headers as
      [(lowercased-name, value)] pairs. *)

  val request_retry :
    ?headers:(string * string) list ->
    ?timeout_s:float ->
    ?retries:int ->
    ?base_ms:float ->
    ?cap_ms:float ->
    ?seed:int64 ->
    addr ->
    meth:string ->
    path:string ->
    int * (string * string) list * string
  (** {!request_full} with capped exponential backoff (base 50ms,
      cap 2s, deterministic jitter from [seed]) on connection errors
      and on [503] responses — a server [Retry-After] is honoured in
      full, above the cap if the server asks for longer. Only [GET]s
      are retried; any other method fails or
      returns its first answer as-is, since a non-idempotent request
      may already have been applied. At most [retries] (default 3)
      re-attempts. *)

  val backoff_delay :
    prng:Ds_util.Prng.t ->
    base_ms:float ->
    cap_ms:float ->
    retry_after:float option ->
    int ->
    float
  (** The delay (seconds) before re-attempt [n] (0-based): jittered
      [max retry_after (min cap (base * 2^n))] — the cap bounds the
      exponential term only, never a server's ask. Exposed for tests. *)
end
