(** Admission control for the serve socket front-end.

    Tracks accepted-but-unfinished connections against a configurable
    limit and classifies queue pressure onto the {!Ds_util.Diag}
    severity lattice:

    - below half the limit: no pressure;
    - [Warning] (>= 1/2): admit, log once per transition;
    - [Degraded] (>= 3/4): admit, responses carry
      [x-depsurf-pressure: degraded];
    - [Fatal] (over the limit): shed with [503] and a [Retry-After]
      computed from the EWMA of observed service time times the queue
      depth (clamped to [1, 30] seconds).

    Domain-safe; the accept loop and every connection handler share one
    value. *)

type t

val create : limit:int -> unit -> t
(** [limit] is clamped to at least 1. *)

val limit : t -> int
val inflight : t -> int
val peak : t -> int
val shed_total : t -> int

val classify : limit:int -> int -> Ds_util.Diag.severity option
(** Pure pressure classification of a queue depth (exposed for property
    tests): [None] below half the limit, then [Warning]/[Degraded], and
    [Fatal] strictly over the limit. *)

type decision =
  | Admit of Ds_util.Diag.severity option * bool
      (** pressure at admission; the bool is [true] on a severity
          transition (log once, not per connection) *)
  | Shed of int  (** Retry-After seconds *)

val admit : t -> decision
(** Take a slot (incrementing the in-flight count) or shed. Every
    [Admit] must be paired with exactly one {!release}. *)

val release : t -> service_s:float -> unit
(** Give the slot back, feeding the observed service time into the
    Retry-After estimate. *)

val ewma_s : t -> float
val retry_after : t -> int
val stats_json : t -> Ds_util.Json.t
