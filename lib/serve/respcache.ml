type entry = {
  e_status : int;
  e_ctype : string;
  e_body : string;
  e_etag : string;
}

(* intrusive doubly-linked LRU list over the table's nodes; c_head is
   the most recently used end, c_tail the eviction end *)
type node = {
  n_key : string;
  n_entry : entry;
  n_size : int;
  mutable n_prev : node option;
  mutable n_next : node option;
}

type t = {
  c_mutex : Mutex.t;
  c_tbl : (string, node) Hashtbl.t;
  c_max_entries : int;
  c_max_bytes : int;
  mutable c_bytes : int;
  mutable c_head : node option;
  mutable c_tail : node option;
}

let create ?(max_entries = 512) ?(max_bytes = 64 * 1024 * 1024) () =
  if max_entries < 1 || max_bytes < 1 then invalid_arg "Respcache.create";
  {
    c_mutex = Mutex.create ();
    c_tbl = Hashtbl.create 64;
    c_max_entries = max_entries;
    c_max_bytes = max_bytes;
    c_bytes = 0;
    c_head = None;
    c_tail = None;
  }

let entry_size key e =
  (* body dominates; the constant covers node + table slot overhead *)
  String.length e.e_body + String.length e.e_ctype + String.length e.e_etag
  + String.length key + 128

let unlink t n =
  (match n.n_prev with Some p -> p.n_next <- n.n_next | None -> t.c_head <- n.n_next);
  (match n.n_next with Some s -> s.n_prev <- n.n_prev | None -> t.c_tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front t n =
  n.n_next <- t.c_head;
  (match t.c_head with Some h -> h.n_prev <- Some n | None -> t.c_tail <- Some n);
  t.c_head <- Some n

let find t key =
  Mutex.lock t.c_mutex;
  let r =
    match Hashtbl.find_opt t.c_tbl key with
    | None -> None
    | Some n ->
        unlink t n;
        push_front t n;
        Some n.n_entry
  in
  Mutex.unlock t.c_mutex;
  r

let evict_tail t =
  match t.c_tail with
  | None -> false
  | Some n ->
      unlink t n;
      Hashtbl.remove t.c_tbl n.n_key;
      t.c_bytes <- t.c_bytes - n.n_size;
      true

let add t key entry =
  let size = entry_size key entry in
  if size > t.c_max_bytes then 0
  else begin
    Mutex.lock t.c_mutex;
    (match Hashtbl.find_opt t.c_tbl key with
    | Some old ->
        unlink t old;
        Hashtbl.remove t.c_tbl key;
        t.c_bytes <- t.c_bytes - old.n_size
    | None -> ());
    let n = { n_key = key; n_entry = entry; n_size = size; n_prev = None; n_next = None } in
    Hashtbl.replace t.c_tbl key n;
    push_front t n;
    t.c_bytes <- t.c_bytes + size;
    let evicted = ref 0 in
    while
      (Hashtbl.length t.c_tbl > t.c_max_entries || t.c_bytes > t.c_max_bytes)
      && Hashtbl.length t.c_tbl > 1
      && evict_tail t
    do
      incr evicted
    done;
    Mutex.unlock t.c_mutex;
    !evicted
  end

let stats t =
  Mutex.lock t.c_mutex;
  let r = (Hashtbl.length t.c_tbl, t.c_bytes) in
  Mutex.unlock t.c_mutex;
  r
