module Diag = Ds_util.Diag

(* Admission control for the socket front-end: a bounded count of
   accepted-but-unfinished connections, classified onto the Diag
   severity lattice. The accept loop asks [admit] per connection;
   handlers pair it with [release] when the connection closes. *)

type t = {
  ad_limit : int;
  ad_mutex : Mutex.t;
  mutable ad_inflight : int;
  mutable ad_peak : int;
  mutable ad_shed : int;
  mutable ad_ewma_s : float;  (* observed per-connection service time *)
  mutable ad_last_severity : Diag.severity option;  (* for transition logs *)
}

let create ~limit () =
  {
    ad_limit = max 1 limit;
    ad_mutex = Mutex.create ();
    ad_inflight = 0;
    ad_peak = 0;
    ad_shed = 0;
    ad_ewma_s = 0.;
    ad_last_severity = None;
  }

let limit t = t.ad_limit

let with_lock t f =
  Mutex.lock t.ad_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.ad_mutex) f

let inflight t = with_lock t (fun () -> t.ad_inflight)
let peak t = with_lock t (fun () -> t.ad_peak)
let shed_total t = with_lock t (fun () -> t.ad_shed)

(* Pressure lattice over queue depth, as a fraction of the limit:
     depth/limit <  1/2  -> admit, no pressure
     depth/limit >= 1/2  -> Warning   (admit; log on transition)
     depth/limit >= 3/4  -> Degraded  (admit; x-depsurf-pressure header)
     depth/limit >= 1    -> Fatal     (shed: 503 + Retry-After)        *)
let classify ~limit depth =
  if depth > limit then Some Diag.Fatal
  else if 4 * depth >= 3 * limit then Some Diag.Degraded
  else if 2 * depth >= limit then Some Diag.Warning
  else None

let ewma_s t = with_lock t (fun () -> t.ad_ewma_s)

(* Retry-After from observed service time: the time to drain a full
   queue at the current per-connection cost, clamped to [1, 30]s so a
   cold first estimate neither answers 0 nor parks clients forever. *)
let retry_after t =
  let ewma, depth = with_lock t (fun () -> (t.ad_ewma_s, t.ad_inflight)) in
  let est = ewma *. float_of_int (max 1 depth) in
  int_of_float (Float.min 30. (Float.max 1. (Float.ceil est)))

type decision =
  | Admit of Diag.severity option * bool
      (** pressure at admission; [true] when it is a transition (worth
          one log line, not one per connection) *)
  | Shed of int  (** suggested Retry-After, seconds *)

let admit t =
  with_lock t (fun () ->
      let depth = t.ad_inflight + 1 in
      match classify ~limit:t.ad_limit depth with
      | Some Diag.Fatal ->
          t.ad_shed <- t.ad_shed + 1;
          let est = t.ad_ewma_s *. float_of_int (max 1 t.ad_inflight) in
          Shed (int_of_float (Float.min 30. (Float.max 1. (Float.ceil est))))
      | sev ->
          t.ad_inflight <- depth;
          if depth > t.ad_peak then t.ad_peak <- depth;
          let transition = sev <> t.ad_last_severity in
          t.ad_last_severity <- sev;
          Admit (sev, transition && sev <> None))

let release t ~service_s =
  with_lock t (fun () ->
      t.ad_inflight <- max 0 (t.ad_inflight - 1);
      (* EWMA with alpha 1/8; first observation seeds it directly *)
      t.ad_ewma_s <-
        (if t.ad_ewma_s = 0. then service_s
         else t.ad_ewma_s +. ((service_s -. t.ad_ewma_s) /. 8.)))

let stats_json t =
  let inflight, peak, shed, ewma =
    with_lock t (fun () -> (t.ad_inflight, t.ad_peak, t.ad_shed, t.ad_ewma_s))
  in
  Ds_util.Json.Obj
    [
      ("limit", Ds_util.Json.Int t.ad_limit);
      ("inflight", Ds_util.Json.Int inflight);
      ("peak", Ds_util.Json.Int peak);
      ("shed", Ds_util.Json.Int shed);
      ("service_ewma_ms", Ds_util.Json.Float (ewma *. 1000.));
      ("retry_after_s", Ds_util.Json.Int (retry_after t));
    ]
