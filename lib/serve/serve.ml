open Ds_ksrc
open Depsurf
module Par = Ds_util.Par
module Metrics = Ds_util.Metrics
module Json = Ds_util.Json
module Store = Ds_store.Store
module Trace = Ds_trace.Trace

(* ---- image naming -------------------------------------------------- *)

let image_name ((v : Version.t), (cfg : Config.t)) =
  Printf.sprintf "%d.%d-%s-%s" v.Version.major v.Version.minor
    (Config.arch_to_string cfg.Config.arch)
    (Config.flavor_to_string cfg.Config.flavor)

let image_of_name name =
  match String.split_on_char '-' name with
  | [ vs; arch; flavor ] -> (
      match String.split_on_char '.' vs with
      | [ ma; mi ] -> (
          match (int_of_string_opt ma, int_of_string_opt mi) with
          | Some major, Some minor ->
              let v = Version.v major minor in
              let cfg =
                match
                  ( List.find_opt (fun a -> Config.arch_to_string a = arch) Config.arches,
                    List.find_opt (fun f -> Config.flavor_to_string f = flavor) Config.flavors )
                with
                | Some a, Some f -> Some Config.{ arch = a; flavor = f }
                | _ -> None
              in
              Option.bind cfg (fun cfg ->
                  if List.exists (fun img -> img = (v, cfg)) Dataset.study_images then
                    Some (v, cfg)
                  else None)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ---- server state -------------------------------------------------- *)

type t = {
  sv_ds : Dataset.t;
  sv_pool : Par.pool;
  sv_metrics : Metrics.t;
  sv_files : (string * string) list;  (** extra image name -> path *)
  ix_surface : (string, string) Par.Memo.t;  (** image name -> response body *)
  ix_diff : (string, string) Par.Memo.t;  (** "a|b" -> response body *)
  ix_mismatch : (string, string) Par.Memo.t;  (** obj digest -> report *)
  ix_file_surface : (string, Surface.t) Par.Memo.t;  (** lenient extracts *)
}

let create ?images_dir ~ds ~pool () =
  let files =
    match images_dir with
    | None -> []
    | Some dir ->
        let entries = Sys.readdir dir in
        Array.sort compare entries;
        Array.to_list entries
        |> List.filter (fun f -> String.length f > 8 && String.sub f 0 8 = "vmlinux-")
        |> List.map (fun f -> (f, Filename.concat dir f))
  in
  (* every request is traced; spans land in the per-domain rings and are
     served back via /v1/trace/recent and ?trace=1 *)
  Trace.enable ();
  {
    sv_ds = ds;
    sv_pool = pool;
    sv_metrics = Metrics.create ();
    sv_files = files;
    ix_surface = Par.Memo.create 64;
    ix_diff = Par.Memo.create 64;
    ix_mismatch = Par.Memo.create 16;
    ix_file_surface = Par.Memo.create 16;
  }

let metrics t = t.sv_metrics
let dataset t = t.sv_ds

(* hot-index lookup with hit/fill accounting; [Par.Memo] gives the
   single-flight guarantee, so "index.fill.<kind>" advances exactly once
   per key no matter how many requests race on it *)
let indexed t memo kind key compute =
  match Par.Memo.find_opt memo key with
  | Some v ->
      Metrics.incr t.sv_metrics ("index.hit." ^ kind);
      v
  | None ->
      Par.Memo.find_or_compute memo key (fun () ->
          Metrics.incr t.sv_metrics ("index.fill." ^ kind);
          compute ())

(* ---- sources ------------------------------------------------------- *)

type source = Study of Version.t * Config.t | File of string

let find_source t name =
  match image_of_name name with
  | Some (v, cfg) -> Some (Study (v, cfg))
  | None -> Option.map (fun p -> File p) (List.assoc_opt name t.sv_files)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let surface_of_source t name = function
  | Study (v, cfg) -> Dataset.surface t.sv_ds v cfg
  | File path ->
      Par.Memo.find_or_compute t.ix_file_surface name (fun () ->
          Metrics.incr t.sv_metrics "compute.file_surface";
          Ds_util.Diag.ok (Surface.extract ~mode:`Lenient (read_file path)))

(* ---- JSON plumbing ------------------------------------------------- *)

let json_body j = Json.to_string j ^ "\n"
let ok_json j = (200, "application/json", json_body j)

let error_json status msg = (status, "application/json", json_body (Api.error ~status msg))

let scale_label ds =
  if Dataset.scale ds = Calibration.bench_scale then "bench"
  else if Dataset.scale ds = Calibration.test_scale then "test"
  else "custom"

(* ---- endpoints ----------------------------------------------------- *)

let healthz t =
  ok_json
    (Api.envelope
    @@ Json.Obj
       [
         ("status", Json.String "ok");
         ("scale", Json.String (scale_label t.sv_ds));
         ("images", Json.Int (List.length Dataset.study_images + List.length t.sv_files));
         ( "index",
           Json.Obj
             [
               ("surfaces", Json.Int (Par.Memo.length t.ix_surface));
               ("diffs", Json.Int (Par.Memo.length t.ix_diff));
               ("mismatches", Json.Int (Par.Memo.length t.ix_mismatch));
             ] );
       ])

let images t =
  let study =
    List.map
      (fun img ->
        Json.Obj
          [ ("name", Json.String (image_name img)); ("kind", Json.String "study") ])
      Dataset.study_images
  in
  let files =
    List.map
      (fun (name, _) ->
        Json.Obj [ ("name", Json.String name); ("kind", Json.String "file") ])
      t.sv_files
  in
  ok_json (Api.envelope (Json.Obj [ ("images", Json.List (study @ files)) ]))

let construct_entry s kind name =
  match kind with
  | "func" -> Option.map Export.func_status (Surface.find_func s name)
  | "struct" -> Option.map Export.struct_def (Surface.find_struct s name)
  | "tracepoint" -> Option.map Export.tracepoint (Surface.find_tracepoint s name)
  | "syscall" -> if Surface.has_syscall s name then Some (Json.Bool true) else None
  | _ -> None

let surface_endpoint t name query =
  match find_source t name with
  | None -> error_json 404 ("unknown image: " ^ name)
  | Some src -> (
      match (List.assoc_opt "kind" query, List.assoc_opt "name" query) with
      | None, None ->
          let body =
            indexed t t.ix_surface "surface" name (fun () ->
                Metrics.incr t.sv_metrics "compute.surface";
                let s = surface_of_source t name src in
                json_body
                  (Api.of_diags ~data:(Export.surface_with_health s) (Surface.health s)))
          in
          (200, "application/json", body)
      | Some kind, Some cname -> (
          if not (List.mem kind [ "func"; "struct"; "tracepoint"; "syscall" ]) then
            error_json 400 ("unknown kind: " ^ kind ^ " (func|struct|tracepoint|syscall)")
          else
            let s = surface_of_source t name src in
            match construct_entry s kind cname with
            | None -> error_json 404 (Printf.sprintf "no %s %s on %s" kind cname name)
            | Some entry ->
                ok_json
                  (Api.of_diags
                     ~data:
                       (Json.Obj
                          [
                            ("image", Json.String name);
                            ("health", Json.String (Export.health_label (Surface.health s)));
                            ("kind", Json.String kind);
                            ("name", Json.String cname);
                            ("entry", entry);
                          ])
                     (Surface.health s)))
      | _ -> error_json 400 "kind= and name= must be given together")

let diff_endpoint t a b =
  match (image_of_name a, image_of_name b) with
  | None, _ -> error_json 404 ("unknown image: " ^ a)
  | _, None -> error_json 404 ("unknown image: " ^ b)
  | Some (va, ca), Some (vb, cb) ->
      let body =
        indexed t t.ix_diff "diff" (a ^ "|" ^ b) (fun () ->
            let sa = Dataset.surface t.sv_ds va ca in
            let sb = Dataset.surface t.sv_ds vb cb in
            let mode =
              if Version.equal va vb then Diff.Across_configs else Diff.Across_versions
            in
            (* persistent tier: arbitrary pairs are store artifacts too,
               so a restarted server re-hydrates instead of re-diffing *)
            let d =
              Store.memo (Dataset.store t.sv_ds) ~ns:"diff"
                ~key:(Dataset.cache_key t.sv_ds ~label:"pair-diff" [ a; b ])
                ~encode:Codec.encode_diff ~decode:Codec.decode_diff
                (fun () ->
                  Metrics.incr t.sv_metrics "compute.diff";
                  Diff.compare_surfaces mode sa sb)
            in
            let fields = match Export.diff d with Json.Obj fs -> fs | _ -> [] in
            json_body
              (Api.envelope
              @@ Json.Obj
                   (("from", Json.String a) :: ("to", Json.String b)
                   :: ( "mode",
                        Json.String
                          (match mode with
                          | Diff.Across_versions -> "across_versions"
                          | Diff.Across_configs -> "across_configs") )
                   :: fields)))
      in
      (200, "application/json", body)

(* stable-probe suggestions: every registry probe whose candidate hooks
   overlap the object's dependency set, resolved across the x86 series *)
let suggestions t obj =
  let deps = Depset.of_obj obj in
  let candidate_matches (c : Compat.candidate) =
    (match Ds_bpf.Hook.target_function c.Compat.ca_hook with
    | Some f -> List.mem (Depset.Dep_func f) deps
    | None -> false)
    ||
    match Ds_bpf.Hook.target_tracepoint c.Compat.ca_hook with
    | Some tp -> List.mem (Depset.Dep_tracepoint tp) deps
    | None -> false
  in
  let relevant =
    List.filter
      (fun (p : Compat.probe) -> List.exists candidate_matches p.Compat.pb_candidates)
      Compat.default_registry
  in
  match relevant with
  | [] -> ""
  | probes ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "\nstable-probe suggestions (compat layer):\n";
      List.iter
        (fun (p : Compat.probe) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -- %s\n" p.Compat.pb_name p.Compat.pb_doc);
          List.iter
            (fun (label, (res : Compat.resolution)) ->
              Buffer.add_string buf
                (Printf.sprintf "    %-24s -> %s\n" label
                   (match res.Compat.rs_hook with
                   | Some hook -> Ds_bpf.Hook.to_string hook
                   | None -> "UNRESOLVED")))
            (Compat.coverage p t.sv_ds
               (List.map (fun v -> (v, Config.x86_generic)) Version.all)))
        probes;
      Buffer.contents buf

let mismatch_endpoint t query body =
  if String.length body = 0 then error_json 400 "empty body: POST the BPF object bytes"
  else
    match Ds_util.Diag.ok (Ds_bpf.Obj.read body) with
    | exception Ds_bpf.Obj.Bad_obj m -> error_json 400 ("bad BPF object: " ^ m)
    | obj ->
        let digest =
          let h = Store.Hash.create () in
          Store.Hash.string h body;
          Store.Hash.hex h
        in
        let report =
          indexed t t.ix_mismatch "mismatch" digest (fun () ->
              Metrics.incr t.sv_metrics "compute.mismatch";
              Report.render_matrix (Pipeline.analyze t.sv_ds obj))
        in
        let report =
          if List.assoc_opt "suggest" query = Some "1" then report ^ suggestions t obj
          else report
        in
        (200, "text/plain", report)

let metrics_endpoint t =
  let store_json =
    match Dataset.store t.sv_ds with
    | None -> Json.Null
    | Some s ->
        let c = Store.stats s in
        Json.Obj
          [
            ("hits", Json.Int c.Store.c_hits);
            ("misses", Json.Int c.Store.c_misses);
            ("evictions", Json.Int c.Store.c_evictions);
            ("writes", Json.Int c.Store.c_writes);
            ("bytes_read", Json.Int c.Store.c_bytes_read);
            ("bytes_written", Json.Int c.Store.c_bytes_written);
          ]
  in
  let fields = match Metrics.to_json t.sv_metrics with Json.Obj fs -> fs | _ -> [] in
  ok_json
    (Api.envelope
    @@ Json.Obj
       (("requests_total", Json.Int (Metrics.counter t.sv_metrics "requests_total"))
       :: ("compiles", Json.Int (Dataset.compile_count t.sv_ds))
       :: ("store", store_json)
       :: ( "index",
            Json.Obj
              [
                ("surfaces", Json.Int (Par.Memo.length t.ix_surface));
                ("diffs", Json.Int (Par.Memo.length t.ix_diff));
                ("mismatches", Json.Int (Par.Memo.length t.ix_mismatch));
              ] )
       :: fields))

(* ---- routing ------------------------------------------------------- *)

let percent_decode s =
  let len = String.length s in
  let b = Buffer.create len in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i < len then
      match s.[i] with
      | '%' when i + 2 < len -> (
          match (hex s.[i + 1], hex s.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char b (Char.chr ((hi * 16) + lo));
              go (i + 3)
          | _ ->
              Buffer.add_char b '%';
              go (i + 1))
      | '+' ->
          Buffer.add_char b ' ';
          go (i + 1)
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go 0;
  Buffer.contents b

let parse_query qs =
  String.split_on_char '&' qs
  |> List.filter_map (fun kv ->
         match String.index_opt kv '=' with
         | None -> if kv = "" then None else Some (percent_decode kv, "")
         | Some i ->
             Some
               ( percent_decode (String.sub kv 0 i),
                 percent_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))

(* ---- /trace/recent ------------------------------------------------- *)

let trace_endpoint query =
  let limit =
    match Option.bind (List.assoc_opt "limit" query) int_of_string_opt with
    | Some n when n > 0 -> n
    | _ -> 100
  in
  let sps = Trace.recent ~limit () in
  ok_json
    (Api.envelope
       (Json.Obj
          [
            ("spans", Json.List (List.map Trace.span_json sps));
            ("dropped", Json.Int (Trace.drops ()));
          ]))

(* the request's own span plus every finished span whose ancestor chain
   reaches it; used for the ?trace=1 inline view of one request *)
let trace_descendants root_id =
  if root_id = 0 then []
  else begin
    let sps = Trace.spans () in
    let parent = Hashtbl.create 64 in
    List.iter (fun sp -> Hashtbl.replace parent sp.Trace.sp_id sp.Trace.sp_parent) sps;
    let reaches id =
      let rec go id depth =
        if depth > 64 || id = 0 then false
        else if id = root_id then true
        else match Hashtbl.find_opt parent id with Some p -> go p (depth + 1) | None -> false
      in
      go id 0
    in
    List.filter
      (fun sp -> sp.Trace.sp_id = root_id || reaches sp.Trace.sp_parent)
      sps
  end

let inject_trace root_id body =
  match Json.of_string body with
  | exception _ -> body
  | Json.Obj fields ->
      let sps = trace_descendants root_id in
      json_body
        (Json.Obj (fields @ [ ("trace", Json.List (List.map Trace.span_json sps)) ]))
  | _ -> body

let dispatch t ~meth ~segs ~query ~body =
  match (meth, segs) with
  | "GET", [ "healthz" ] -> healthz t
  | "GET", [ "images" ] -> images t
  | "GET", [ "surface"; name ] -> surface_endpoint t name query
  | "GET", [ "diff"; a; b ] -> diff_endpoint t a b
  | "POST", [ "mismatch" ] -> mismatch_endpoint t query body
  | "GET", [ "metrics" ] -> metrics_endpoint t
  | "GET", [ "trace"; "recent" ] -> trace_endpoint query
  | ( _,
      ( [ "healthz" ] | [ "images" ] | [ "surface"; _ ] | [ "diff"; _; _ ] | [ "metrics" ]
      | [ "trace"; "recent" ] ) ) ->
      error_json 405 ("method not allowed: " ^ meth)
  | _, [ "mismatch" ] -> error_json 405 "POST the BPF object bytes to /mismatch"
  | _ ->
      error_json 404
        "no such endpoint (healthz, images, surface, diff, mismatch, metrics, trace/recent; \
         all also under /v1)"

let route_label segs =
  match segs with
  | [ "healthz" ] -> "/healthz"
  | [ "images" ] -> "/images"
  | "surface" :: _ -> "/surface"
  | "diff" :: _ -> "/diff"
  | [ "mismatch" ] -> "/mismatch"
  | [ "metrics" ] -> "/metrics"
  | "trace" :: _ -> "/trace"
  | _ -> "/other"

let handle_request t ~meth ~target ~body =
  let path, query =
    match String.index_opt target '?' with
    | None -> (target, [])
    | Some i ->
        ( String.sub target 0 i,
          parse_query (String.sub target (i + 1) (String.length target - i - 1)) )
  in
  let segs =
    String.split_on_char '/' path |> List.filter (fun s -> s <> "") |> List.map percent_decode
  in
  (* /v1/<route> and the bare legacy <route> share one handler (and one
     cached body), which makes the byte-identical-alias guarantee
     structural rather than something each endpoint re-implements *)
  let segs = match segs with "v1" :: rest -> rest | segs -> segs in
  let label = route_label segs in
  Metrics.incr t.sv_metrics "requests_total";
  let t0 = Unix.gettimeofday () in
  let trace_id = ref 0 in
  let status, ctype, rbody =
    Trace.span ~name:"serve.request" ~attrs:[ ("method", meth); ("route", label) ]
      (fun () ->
        trace_id := Trace.current_id ();
        try dispatch t ~meth ~segs ~query ~body
        with e -> error_json 500 ("internal error: " ^ Printexc.to_string e))
  in
  let rbody =
    if List.assoc_opt "trace" query = Some "1" && ctype = "application/json" then
      inject_trace !trace_id rbody
    else rbody
  in
  Metrics.record t.sv_metrics label (Unix.gettimeofday () -. t0);
  Metrics.incr t.sv_metrics ("requests." ^ label);
  if status >= 400 then Metrics.incr t.sv_metrics ("errors." ^ label);
  (status, ctype, [ ("x-depsurf-trace", string_of_int !trace_id) ], rbody)

(* ---- HTTP over sockets --------------------------------------------- *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let reason_of = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let send_response fd status ctype extra_headers body =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) extra_headers)
  in
  let msg =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: close\r\n\r\n%s"
      status (reason_of status) ctype (String.length body) extra body
  in
  write_all fd msg 0 (String.length msg)

let find_crlfcrlf s =
  let len = String.length s in
  let rec go i =
    if i + 3 >= len then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then Some i
    else go (i + 1)
  in
  go 0

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let max_header_bytes = 65536
let max_body_bytes = 16 * 1024 * 1024

exception Bad_request of string

(* read one request: request line, headers, Content-Length body *)
let recv_request fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec fill_headers () =
    match find_crlfcrlf (Buffer.contents buf) with
    | Some i -> i
    | None ->
        if Buffer.length buf > max_header_bytes then raise (Bad_request "headers too large");
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then raise (Bad_request "connection closed before headers");
        Buffer.add_subbytes buf chunk 0 n;
        fill_headers ()
  in
  let hdr_end = fill_headers () in
  let raw = Buffer.contents buf in
  let header_text = String.sub raw 0 hdr_end in
  let request_line, headers =
    match List.map strip_cr (String.split_on_char '\n' header_text) with
    | [] -> raise (Bad_request "empty request")
    | rl :: hs ->
        ( rl,
          List.filter_map
            (fun h ->
              match String.index_opt h ':' with
              | None -> None
              | Some i ->
                  Some
                    ( String.lowercase_ascii (String.sub h 0 i),
                      String.trim (String.sub h (i + 1) (String.length h - i - 1)) ))
            hs )
  in
  let meth, target =
    match String.split_on_char ' ' request_line with
    | meth :: target :: _ -> (meth, target)
    | _ -> raise (Bad_request ("bad request line: " ^ request_line))
  in
  let content_length =
    match List.assoc_opt "content-length" headers with
    | None -> 0
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 0 && n <= max_body_bytes -> n
        | _ -> raise (Bad_request ("bad content-length: " ^ v)))
  in
  let body_start = hdr_end + 4 in
  let body_buf = Buffer.create content_length in
  Buffer.add_string body_buf (String.sub raw body_start (String.length raw - body_start));
  while Buffer.length body_buf < content_length do
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n = 0 then raise (Bad_request "connection closed before body");
    Buffer.add_subbytes body_buf chunk 0 n
  done;
  (meth, target, String.sub (Buffer.contents body_buf) 0 content_length)

let handle_conn t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* a stuck or byte-dribbling client must not pin a pool worker *)
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30. with Unix.Unix_error _ -> ());
      match recv_request fd with
      | exception Bad_request m ->
          Metrics.incr t.sv_metrics "errors.protocol";
          (try send_response fd 400 "text/plain" [] ("bad request: " ^ m ^ "\n")
           with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> Metrics.incr t.sv_metrics "errors.io"
      | meth, target, body -> (
          let status, ctype, headers, rbody = handle_request t ~meth ~target ~body in
          try send_response fd status ctype headers rbody
          with Unix.Unix_error _ -> Metrics.incr t.sv_metrics "errors.io"))

type addr = Unix_sock of string | Tcp of string * int

type handle = {
  h_sock : Unix.file_descr;
  h_addr : addr;
  h_stop : bool Atomic.t;
  mutable h_loop : unit Par.future option;
  h_path : string option;
}

let rec accept_loop t h =
  if not (Atomic.get h.h_stop) then begin
    (* the accept loop owns one worker for its whole lifetime; on a
       2-worker pool the submitted connection handlers would otherwise
       never run (the other "worker" is the caller, and it only helps
       while blocked in [Par.await]). Draining here keeps any pool size
       >= 2 live: spare workers race us for the queue, and when there
       are none we handle the connections ourselves between selects. *)
    while Par.drain_one t.sv_pool do () done;
    (* select with a short timeout so [stop] is honoured promptly even
       with no incoming connections *)
    match Unix.select [ h.h_sock ] [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t h
    | [], _, _ -> accept_loop t h
    | _ :: _, _, _ -> (
        match Unix.accept h.h_sock with
        | exception Unix.Unix_error _ -> accept_loop t h
        | fd, _ ->
            ignore (Par.submit t.sv_pool (fun () -> handle_conn t fd));
            accept_loop t h)
  end

let start t addr =
  if Par.jobs t.sv_pool < 2 then
    invalid_arg "Serve.start: the pool needs at least 2 workers (one runs the accept loop)";
  let domain, sockaddr, path =
    match addr with
    | Unix_sock p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p, Some p)
    | Tcp (host, port) ->
        (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port), None)
  in
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true
  | Unix_sock p -> if Sys.file_exists p then try Unix.unlink p with Unix.Unix_error _ -> ());
  (try
     Unix.bind sock sockaddr;
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let bound =
    match addr with
    | Tcp (host, _) -> (
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, port) -> Tcp (host, port)
        | _ -> addr)
    | a -> a
  in
  let h = { h_sock = sock; h_addr = bound; h_stop = Atomic.make false; h_loop = None; h_path = path } in
  h.h_loop <- Some (Par.submit t.sv_pool (fun () -> accept_loop t h));
  h

let bound_addr h = h.h_addr

let stop h =
  if not (Atomic.get h.h_stop) then begin
    Atomic.set h.h_stop true;
    (match h.h_loop with
    | Some f -> ( try Par.await f with _ -> ())
    | None -> ());
    (try Unix.close h.h_sock with Unix.Unix_error _ -> ());
    match h.h_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ()
  end

(* ---- client -------------------------------------------------------- *)

module Client = struct
  let read_all fd =
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      end
    in
    go ();
    Buffer.contents buf

  let request_full ?body addr ~meth ~path =
    let domain, sockaddr =
      match addr with
      | Unix_sock p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
      | Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd sockaddr;
        let payload = Option.value ~default:"" body in
        let req =
          Printf.sprintf "%s %s HTTP/1.1\r\nHost: depsurf\r\n%sConnection: close\r\n\r\n%s"
            meth path
            (if payload = "" then ""
             else Printf.sprintf "Content-Length: %d\r\n" (String.length payload))
            payload
        in
        write_all fd req 0 (String.length req);
        let raw = read_all fd in
        match find_crlfcrlf raw with
        | None -> failwith "malformed HTTP response (no header terminator)"
        | Some i ->
            let status =
              match String.split_on_char ' ' (List.hd (String.split_on_char '\n' raw)) with
              | _ :: code :: _ -> (
                  match int_of_string_opt code with
                  | Some c -> c
                  | None -> failwith "malformed HTTP status line")
              | _ -> failwith "malformed HTTP status line"
            in
            let headers =
              String.split_on_char '\n' (String.sub raw 0 i)
              |> List.filter_map (fun line ->
                     let line = strip_cr line in
                     match String.index_opt line ':' with
                     | None -> None
                     | Some j ->
                         Some
                           ( String.lowercase_ascii (String.sub line 0 j),
                             String.trim
                               (String.sub line (j + 1) (String.length line - j - 1)) ))
            in
            (status, headers, String.sub raw (i + 4) (String.length raw - i - 4)))

  let request ?body addr ~meth ~path =
    let status, _, body = request_full ?body addr ~meth ~path in
    (status, body)
end
