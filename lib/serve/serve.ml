open Ds_ksrc
open Depsurf
module Par = Ds_util.Par
module Metrics = Ds_util.Metrics
module Json = Ds_util.Json
module Deadline = Ds_util.Deadline
module Diag = Ds_util.Diag
module Store = Ds_store.Store
module Trace = Ds_trace.Trace
module Watch = Ds_watch.Watch

(* ---- overload & lifecycle limits ----------------------------------- *)

type limits = {
  li_max_inflight : int;
      (* admission cap: accepted-but-unfinished connections; over it,
         new connections are shed with 503 + Retry-After *)
  li_read_timeout_s : float;
      (* whole-receive deadline (request line + headers + body): a
         trickling or stalled client gets 408, not a parked worker *)
  li_handle_deadline_s : float;
      (* cooperative compute budget per request (Deadline); over it the
         handler answers 503 instead of burning a worker *)
  li_write_timeout_s : float;  (* per-socket send timeout *)
  li_drain_deadline_s : float;  (* stop: max wait for in-flight requests *)
}

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

let default_limits () =
  {
    li_max_inflight = env_int "DEPSURF_MAX_INFLIGHT" 64;
    li_read_timeout_s = 10.;
    li_handle_deadline_s = float_of_int (env_int "DEPSURF_DEADLINE_MS" 30_000) /. 1000.;
    li_write_timeout_s = 10.;
    li_drain_deadline_s = 10.;
  }

(* ---- image naming -------------------------------------------------- *)

(* the study-matrix naming now lives with the watch tier (which persists
   base names in its delta keys); re-exported here for API stability *)
let image_name = Watch.image_name
let image_of_name = Watch.image_of_name

(* ---- server state -------------------------------------------------- *)

type t = {
  sv_ds : Dataset.t;
  sv_pool : Par.pool;
  sv_metrics : Metrics.t;
  sv_limits : limits;
  sv_adm : Admission.t;  (** accepted-connection bookkeeping + shedding *)
  sv_files : (string * string) list;  (** extra image name -> path *)
  sv_cache : Respcache.t;  (** serialized (status, ctype, body, etag) per request key *)
  sv_generation : int Atomic.t;  (** part of every cache key; bump to invalidate *)
  sv_store_gen : int Atomic.t;  (** last-seen store maintenance generation *)
  sv_store_checked : float Atomic.t;  (** last revalidation poll (gettimeofday) *)
  ix_surface : (string, string) Par.Memo.t;  (** image name -> response body *)
  ix_diff : (string, string) Par.Memo.t;  (** "a|b" -> response body *)
  ix_mismatch : (string, string) Par.Memo.t;  (** obj digest -> report *)
  ix_verify : (string, string) Par.Memo.t;  (** "image|digest" -> response body *)
  ix_file_surface : (string, Surface.t) Par.Memo.t;  (** lenient extracts *)
  ix_graph : (string, string) Par.Memo.t;  (** graph query key -> response body *)
  ix_blast : (string, string) Par.Memo.t;  (** "sym|release" -> response body *)
  sv_watch : Watch.t;  (** subscriptions + delta ingest + events *)
  sv_legacy : bool;  (** serve unprefixed legacy routes (--no-legacy-routes) *)
  sv_parked : parked list ref;  (** long-pollers waiting for events, fd ownership here *)
  sv_park_mu : Mutex.t;
  sv_draining : bool Atomic.t;  (** SIGTERM drain: parked pollers answer immediately *)
  sv_notify : bool Atomic.t;  (** watch wakeup listener installed (once) *)
}

(* A parked long-poll: the connection was admitted, its request fully
   read, and nothing was ready — instead of pinning a pool worker (on a
   1-core host the accept domain itself runs the handlers, so a blocking
   wait would deadlock the server) the fd is handed to this lot and the
   worker returns. Delivery re-enters [handle_request], so a woken
   poller gets the exact response (headers, tracing, metrics) an
   immediate request would have produced. *)
and parked = {
  pk_fd : Unix.file_descr;
  pk_sub : string;
  pk_since : int;
  pk_target : string;  (** original request target, re-dispatched on delivery *)
  pk_headers : (string * string) list;
  pk_pressure : Diag.severity option;
  pk_admitted_at : float;  (** admission slot held while parked *)
  pk_expiry : float;  (** deadline-bounded: wait capped by the handle budget *)
}

let create ?images_dir ?limits ?(legacy = true) ~ds ~pool () =
  let limits = match limits with Some l -> l | None -> default_limits () in
  let files =
    match images_dir with
    | None -> []
    | Some dir ->
        let entries = Sys.readdir dir in
        Array.sort compare entries;
        Array.to_list entries
        |> List.filter (fun f -> String.length f > 8 && String.sub f 0 8 = "vmlinux-")
        |> List.map (fun f -> (f, Filename.concat dir f))
  in
  (* every request is traced; spans land in the per-domain rings and are
     served back via /v1/trace/recent and ?trace=1 *)
  Trace.enable ();
  let metrics = Metrics.create () in
  {
    sv_ds = ds;
    sv_pool = pool;
    sv_metrics = metrics;
    sv_limits = limits;
    sv_adm = Admission.create ~limit:limits.li_max_inflight ();
    sv_files = files;
    sv_cache = Respcache.create ();
    sv_generation = Atomic.make 0;
    sv_store_gen =
      Atomic.make
        (match Dataset.store ds with
        | None -> 0
        | Some s -> Store.maintenance_generation ~dir:(Store.dir s));
    sv_store_checked = Atomic.make (Unix.gettimeofday ());
    ix_surface = Par.Memo.create 64;
    ix_diff = Par.Memo.create 64;
    ix_mismatch = Par.Memo.create 16;
    ix_verify = Par.Memo.create 16;
    ix_file_surface = Par.Memo.create 16;
    ix_graph = Par.Memo.create 64;
    ix_blast = Par.Memo.create 16;
    sv_watch = Watch.create ~pool ~metrics ds;
    sv_legacy = legacy;
    sv_parked = ref [];
    sv_park_mu = Mutex.create ();
    sv_draining = Atomic.make false;
    sv_notify = Atomic.make false;
  }

let metrics t = t.sv_metrics
let watch t = t.sv_watch

let parked_count t =
  Mutex.lock t.sv_park_mu;
  let n = List.length !(t.sv_parked) in
  Mutex.unlock t.sv_park_mu;
  n
let dataset t = t.sv_ds
let limits t = t.sv_limits
let admission t = t.sv_adm
let generation t = Atomic.get t.sv_generation

(* Nothing mutates the indexes today (the study matrix is fixed and
   [images_dir] is scanned once at [create]); this is the hook index
   mutations must call so cached bytes and ETags stop matching. *)
let invalidate t = Atomic.incr t.sv_generation

(* The one external mutation source: `depsurf cache clear`/`gc`/`verify`
   run against this server's store directory. They bump the store's
   persisted maintenance generation; when it moves, drop every cached
   response byte so nothing keyed to the pre-maintenance store keeps
   being served. CAS so racing requests bump [sv_generation] once. *)
let revalidate_store t =
  match Dataset.store t.sv_ds with
  | None -> ()
  | Some s ->
      let gen = Store.maintenance_generation ~dir:(Store.dir s) in
      let seen = Atomic.get t.sv_store_gen in
      if gen <> seen && Atomic.compare_and_set t.sv_store_gen seen gen then begin
        Metrics.incr t.sv_metrics "cache.store_invalidate";
        invalidate t
      end

(* poll the generation file at most once a second on the request path:
   a stat+read per request would make every cacheable GET pay disk for
   an event that almost never happens *)
let revalidate_throttled t =
  let now = Unix.gettimeofday () in
  let last = Atomic.get t.sv_store_checked in
  if now -. last >= 1.0 && Atomic.compare_and_set t.sv_store_checked last now then
    revalidate_store t

(* hot-index lookup with hit/fill accounting; [Par.Memo] gives the
   single-flight guarantee, so "index.fill.<kind>" advances exactly once
   per key no matter how many requests race on it *)
let indexed t memo kind key compute =
  match Par.Memo.find_opt memo key with
  | Some v ->
      Metrics.incr t.sv_metrics ("index.hit." ^ kind);
      v
  | None ->
      Par.Memo.find_or_compute memo key (fun () ->
          (* cooperative budget check before the expensive fill: an
             already-over-deadline request gives its worker back here *)
          Deadline.check ();
          Metrics.incr t.sv_metrics ("index.fill." ^ kind);
          compute ())

(* ---- sources ------------------------------------------------------- *)

type source = Study of Version.t * Config.t | File of string

let find_source t name =
  match image_of_name name with
  | Some (v, cfg) -> Some (Study (v, cfg))
  | None -> Option.map (fun p -> File p) (List.assoc_opt name t.sv_files)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let surface_of_source t name = function
  | Study (v, cfg) -> Dataset.surface t.sv_ds v cfg
  | File path ->
      Par.Memo.find_or_compute t.ix_file_surface name (fun () ->
          Metrics.incr t.sv_metrics "compute.file_surface";
          Ds_util.Diag.ok (Surface.extract ~mode:`Lenient (read_file path)))

(* ---- JSON plumbing ------------------------------------------------- *)

let json_body j = Json.to_string j ^ "\n"
let ok_json j = (200, "application/json", json_body j)

(* every non-2xx body, socket-layer rejections included, goes through
   the one [Api.error_envelope] constructor: {v, health, diagnostics}
   uniformly, golden-pinned in the tests *)
let error_json ?diagnostics status msg =
  (status, "application/json", json_body (Api.error_envelope ~status ?diagnostics msg))

let scale_label ds =
  if Dataset.scale ds = Calibration.bench_scale then "bench"
  else if Dataset.scale ds = Calibration.test_scale then "test"
  else "custom"

(* ---- endpoints ----------------------------------------------------- *)

let healthz t =
  ok_json
    (Api.envelope
    @@ Json.Obj
       [
         ("status", Json.String "ok");
         ("scale", Json.String (scale_label t.sv_ds));
         ("images", Json.Int (List.length Dataset.study_images + List.length t.sv_files));
         ( "index",
           Json.Obj
             [
               ("surfaces", Json.Int (Par.Memo.length t.ix_surface));
               ("diffs", Json.Int (Par.Memo.length t.ix_diff));
               ("mismatches", Json.Int (Par.Memo.length t.ix_mismatch));
               ("verifies", Json.Int (Par.Memo.length t.ix_verify));
               ("graphs", Json.Int (Par.Memo.length t.ix_graph));
               ("blasts", Json.Int (Par.Memo.length t.ix_blast));
             ] );
       ])

let images t =
  let study =
    List.map
      (fun img ->
        Json.Obj
          [ ("name", Json.String (image_name img)); ("kind", Json.String "study") ])
      Dataset.study_images
  in
  let files =
    List.map
      (fun (name, _) ->
        Json.Obj [ ("name", Json.String name); ("kind", Json.String "file") ])
      t.sv_files
  in
  ok_json (Api.envelope (Json.Obj [ ("images", Json.List (study @ files)) ]))

let construct_entry s kind name =
  match kind with
  | "func" -> Option.map Export.func_status (Surface.find_func s name)
  | "struct" -> Option.map Export.struct_def (Surface.find_struct s name)
  | "tracepoint" -> Option.map Export.tracepoint (Surface.find_tracepoint s name)
  | "syscall" -> if Surface.has_syscall s name then Some (Json.Bool true) else None
  | _ -> None

let surface_endpoint t name query =
  match find_source t name with
  | None -> error_json 404 ("unknown image: " ^ name)
  | Some src -> (
      match (List.assoc_opt "kind" query, List.assoc_opt "name" query) with
      | None, None ->
          let body =
            indexed t t.ix_surface "surface" name (fun () ->
                Metrics.incr t.sv_metrics "compute.surface";
                let s = surface_of_source t name src in
                json_body
                  (Api.of_diags ~data:(Export.surface_with_health s) (Surface.health s)))
          in
          (200, "application/json", body)
      | Some kind, Some cname -> (
          if not (List.mem kind [ "func"; "struct"; "tracepoint"; "syscall" ]) then
            error_json 400 ("unknown kind: " ^ kind ^ " (func|struct|tracepoint|syscall)")
          else
            let s = surface_of_source t name src in
            match construct_entry s kind cname with
            | None -> error_json 404 (Printf.sprintf "no %s %s on %s" kind cname name)
            | Some entry ->
                ok_json
                  (Api.of_diags
                     ~data:
                       (Json.Obj
                          [
                            ("image", Json.String name);
                            ("health", Json.String (Export.health_label (Surface.health s)));
                            ("kind", Json.String kind);
                            ("name", Json.String cname);
                            ("entry", entry);
                          ])
                     (Surface.health s)))
      | _ -> error_json 400 "kind= and name= must be given together")

let diff_endpoint t a b =
  match (image_of_name a, image_of_name b) with
  | None, _ -> error_json 404 ("unknown image: " ^ a)
  | _, None -> error_json 404 ("unknown image: " ^ b)
  | Some (va, ca), Some (vb, cb) ->
      let body =
        indexed t t.ix_diff "diff" (a ^ "|" ^ b) (fun () ->
            let sa = Dataset.surface t.sv_ds va ca in
            let sb = Dataset.surface t.sv_ds vb cb in
            let mode =
              if Version.equal va vb then Diff.Across_configs else Diff.Across_versions
            in
            (* persistent tier: arbitrary pairs are store artifacts too,
               so a restarted server re-hydrates instead of re-diffing *)
            let d =
              Store.memo (Dataset.store t.sv_ds) ~ns:"diff"
                ~key:(Dataset.cache_key t.sv_ds ~label:"pair-diff" [ a; b ])
                ~encode:Codec.encode_diff ~decode:Codec.decode_diff
                (fun () ->
                  Metrics.incr t.sv_metrics "compute.diff";
                  Diff.compare_surfaces mode sa sb)
            in
            let fields = match Export.diff d with Json.Obj fs -> fs | _ -> [] in
            json_body
              (Api.envelope
              @@ Json.Obj
                   (("from", Json.String a) :: ("to", Json.String b)
                   :: ( "mode",
                        Json.String
                          (match mode with
                          | Diff.Across_versions -> "across_versions"
                          | Diff.Across_configs -> "across_configs") )
                   :: fields)))
      in
      (200, "application/json", body)

(* ---- /graph/* ------------------------------------------------------ *)

let default_graph_image = (Version.v 5 4, Config.x86_generic)

let version_of_string s =
  let s =
    if String.length s > 0 && s.[0] = 'v' then String.sub s 1 (String.length s - 1) else s
  in
  match String.split_on_char '.' s with
  | [ ma; mi ] -> (
      match (int_of_string_opt ma, int_of_string_opt mi) with
      | Some major, Some minor -> Some (Version.v major minor)
      | _ -> None)
  | _ -> None

let graph_query_endpoint t dir sym query =
  match Depset.dep_of_string sym with
  | None -> error_json 400 ("bad node syntax: " ^ sym ^ " (kind:name or a bare function name)")
  | Some node -> (
      let image =
        match List.assoc_opt "image" query with
        | None | Some "" -> Some default_graph_image
        | Some name -> image_of_name name
      in
      match image with
      | None -> error_json 404 ("unknown image: " ^ Option.value ~default:"" (List.assoc_opt "image" query))
      | Some (v, cfg) ->
          let transitive = List.assoc_opt "transitive" query = Some "1" in
          let dname = match dir with `Deps -> "deps" | `Rdeps -> "rdeps" in
          let key =
            Printf.sprintf "%s|%s|%s|%b" dname (image_name (v, cfg)) (Depset.dep_to_string node)
              transitive
          in
          let body =
            indexed t t.ix_graph "graph" key (fun () ->
                Metrics.incr t.sv_metrics "compute.graph";
                let g = Ds_graph.Graph.of_dataset ~pool:t.sv_pool t.sv_ds v cfg in
                json_body (Api.envelope (Ds_graph.Graph.query_json g ~dir ~transitive node)))
          in
          (200, "application/json", body))

let graph_blast_endpoint t sym query =
  match Depset.dep_of_string sym with
  | None -> error_json 400 ("bad node syntax: " ^ sym ^ " (kind:name or a bare function name)")
  | Some node -> (
      match Option.bind (List.assoc_opt "release" query) version_of_string with
      | None -> error_json 400 "release=MAJOR.MINOR is required"
      | Some release ->
          let known = List.exists (Version.equal release) Version.all in
          let first = List.hd Version.all in
          if (not known) || Version.equal release first then
            error_json 404
              (Printf.sprintf "release %s is not a diffable study release"
                 (Version.to_string release))
          else
            let key = Depset.dep_to_string node ^ "|" ^ Version.to_string release in
            let body =
              indexed t t.ix_blast "blast" key (fun () ->
                  Metrics.incr t.sv_metrics "compute.blast";
                  match Ds_graph.Blast.query ~pool:t.sv_pool t.sv_ds ~release node with
                  | Ok r -> json_body (Api.envelope (Ds_graph.Blast.json r))
                  | Error e -> failwith e)
            in
            (200, "application/json", body))

(* stable-probe suggestions: every registry probe whose candidate hooks
   overlap the object's dependency set, resolved across the x86 series *)
let suggestions t obj =
  let deps = Depset.of_obj obj in
  let candidate_matches (c : Compat.candidate) =
    (match Ds_bpf.Hook.target_function c.Compat.ca_hook with
    | Some f -> List.mem (Depset.Dep_func f) deps
    | None -> false)
    ||
    match Ds_bpf.Hook.target_tracepoint c.Compat.ca_hook with
    | Some tp -> List.mem (Depset.Dep_tracepoint tp) deps
    | None -> false
  in
  let relevant =
    List.filter
      (fun (p : Compat.probe) -> List.exists candidate_matches p.Compat.pb_candidates)
      Compat.default_registry
  in
  match relevant with
  | [] -> ""
  | probes ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "\nstable-probe suggestions (compat layer):\n";
      List.iter
        (fun (p : Compat.probe) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -- %s\n" p.Compat.pb_name p.Compat.pb_doc);
          List.iter
            (fun (label, (res : Compat.resolution)) ->
              Buffer.add_string buf
                (Printf.sprintf "    %-24s -> %s\n" label
                   (match res.Compat.rs_hook with
                   | Some hook -> Ds_bpf.Hook.to_string hook
                   | None -> "UNRESOLVED")))
            (Compat.coverage p t.sv_ds
               (List.map (fun v -> (v, Config.x86_generic)) Version.all)))
        probes;
      Buffer.contents buf

let mismatch_endpoint t query body =
  if String.length body = 0 then error_json 400 "empty body: POST the BPF object bytes"
  else
    match Ds_util.Diag.ok (Ds_bpf.Obj.read body) with
    | exception Ds_bpf.Obj.Bad_obj m -> error_json 400 ("bad BPF object: " ^ m)
    | obj ->
        let digest =
          let h = Store.Hash.create () in
          Store.Hash.string h body;
          Store.Hash.hex h
        in
        let report =
          indexed t t.ix_mismatch "mismatch" digest (fun () ->
              Metrics.incr t.sv_metrics "compute.mismatch";
              Report.render_matrix (Pipeline.analyze t.sv_ds obj))
        in
        let report =
          if List.assoc_opt "suggest" query = Some "1" then report ^ suggestions t obj
          else report
        in
        (200, "text/plain", report)

(* Structured verifier-rejection diagnostics for one object against one
   study image. The body is the exact [Verify.envelope] bytes [depsurf
   doctor --json] prints, so the CLI and the service stay comparable
   with [cmp]. Unlike /mismatch, a rejected object still answers 200 —
   the rejection is the payload; only a request-shaped problem (empty
   body, unknown image) is an HTTP error. *)
let verify_endpoint t query body =
  if String.length body = 0 then error_json 400 "empty body: POST the BPF object bytes"
  else begin
    let image = Option.value ~default:"5.4-x86-generic" (List.assoc_opt "image" query) in
    match image_of_name image with
    | None -> error_json 400 ("unknown study image: " ^ image)
    | Some (v, cfg) ->
        let digest = Ds_verify.Verify.digest body in
        let rbody =
          indexed t t.ix_verify "verify" (image ^ "|" ^ digest) (fun () ->
              Metrics.incr t.sv_metrics "compute.verify";
              Trace.span ~name:"verify.obj"
                ~attrs:[ ("image", image); ("digest", digest) ]
                (fun () ->
                  json_body
                    (Ds_verify.Verify.envelope
                       (Ds_verify.Verify.of_dataset t.sv_ds v cfg body))))
        in
        (200, "application/json", rbody)
  end

let metrics_endpoint t =
  let store_json =
    match Dataset.store t.sv_ds with
    | None -> Json.Null
    | Some s ->
        let c = Store.stats s in
        Json.Obj
          [
            ("hits", Json.Int c.Store.c_hits);
            ("misses", Json.Int c.Store.c_misses);
            ("evictions", Json.Int c.Store.c_evictions);
            ("writes", Json.Int c.Store.c_writes);
            ("bytes_read", Json.Int c.Store.c_bytes_read);
            ("bytes_written", Json.Int c.Store.c_bytes_written);
          ]
  in
  let fields = match Metrics.to_json t.sv_metrics with Json.Obj fs -> fs | _ -> [] in
  let cache_entries, cache_bytes = Respcache.stats t.sv_cache in
  ok_json
    (Api.envelope
    @@ Json.Obj
       (("requests_total", Json.Int (Metrics.counter t.sv_metrics "requests_total"))
       :: ("compiles", Json.Int (Dataset.compile_count t.sv_ds))
       :: ("store", store_json)
       :: ( "index",
            Json.Obj
              [
                ("surfaces", Json.Int (Par.Memo.length t.ix_surface));
                ("diffs", Json.Int (Par.Memo.length t.ix_diff));
                ("mismatches", Json.Int (Par.Memo.length t.ix_mismatch));
                ("verifies", Json.Int (Par.Memo.length t.ix_verify));
                ("graphs", Json.Int (Par.Memo.length t.ix_graph));
                ("blasts", Json.Int (Par.Memo.length t.ix_blast));
              ] )
       :: ( "response_cache",
            Json.Obj
              [
                ("entries", Json.Int cache_entries);
                ("bytes", Json.Int cache_bytes);
                ("generation", Json.Int (Atomic.get t.sv_generation));
              ] )
       :: ("admission", Admission.stats_json t.sv_adm)
       :: ( "watch",
            Json.Obj
              [
                ("subscriptions", Json.Int (List.length (Watch.subs t.sv_watch)));
                ("cursor", Json.Int (Watch.cursor t.sv_watch));
                ("parked", Json.Int (parked_count t));
                ("extractions", Json.Int (Watch.extractions t.sv_watch));
              ] )
       :: fields))


(* ---- watch & subscriptions ------------------------------------------ *)

(* deps arrive as canonical "kind:name" strings (bare names mean func:),
   either in the JSON body or as a comma-separated ?deps= param *)
let parse_dep_strings strs =
  let deps, bad =
    List.fold_left
      (fun (deps, bad) s ->
        match Depset.dep_of_string s with
        | Some d -> (d :: deps, bad)
        | None -> (deps, s :: bad))
      ([], []) strs
  in
  if bad <> [] then
    Error (List.rev_map (fun s -> Printf.sprintf "unparseable dependency %S" s) bad)
  else Ok (List.rev deps)

let subscriptions_create t query body =
  let from_query () =
    match List.assoc_opt "deps" query with
    | None | Some "" -> []
    | Some s -> String.split_on_char ',' s |> List.filter (fun s -> s <> "")
  in
  let parsed =
    if String.length body = 0 then Ok (from_query (), List.assoc_opt "label" query)
    else
      match Json.of_string body with
      | exception Json.Parse_error m -> Error [ "subscription body is not JSON: " ^ m ]
      | j ->
          let deps =
            match Json.member "deps" j with
            | Some (Json.List l) ->
                Ok
                  (List.filter_map
                     (function Json.String s -> Some s | _ -> None)
                     l)
            | Some _ -> Error [ "\"deps\" must be a list of strings" ]
            | None -> Ok (from_query ())
          in
          let label =
            match Json.member "label" j with
            | Some (Json.String l) -> Some l
            | _ -> List.assoc_opt "label" query
          in
          Result.map (fun d -> (d, label)) deps
  in
  match parsed with
  | Error diags -> error_json ~diagnostics:diags 400 "invalid subscription request"
  | Ok ([], _) ->
      error_json 400 "no dependencies: pass a JSON body {\"deps\": [\"func:vfs_read\", ...]}"
  | Ok (strs, label) -> (
      match parse_dep_strings strs with
      | Error diags -> error_json ~diagnostics:diags 400 "invalid subscription request"
      | Ok deps ->
          let sub = Watch.subscribe t.sv_watch ?label deps in
          ok_json (Api.envelope (Watch.sub_json t.sv_watch sub)))

let subscriptions_list t =
  let subs = Watch.subs t.sv_watch in
  ok_json
    (Api.envelope
       (Json.Obj
          [
            ("subscriptions", Json.List (List.map (Watch.sub_json t.sv_watch) subs));
            ("cursor", Json.Int (Watch.cursor t.sv_watch));
          ]))

let subscription_get t id =
  match Watch.find_sub t.sv_watch id with
  | None -> error_json 404 ("no such subscription: " ^ id)
  | Some sub -> ok_json (Api.envelope (Watch.sub_json t.sv_watch sub))

let subscription_delete t id =
  if Watch.unsubscribe t.sv_watch id then
    ok_json (Api.envelope (Json.Obj [ ("removed", Json.String id) ]))
  else error_json 404 ("no such subscription: " ^ id)

let watch_ingest t query body =
  if String.length body = 0 then
    error_json 400 "empty body: POST the release image (or ?kind=surface codec bytes)"
  else
    match List.assoc_opt "base" query with
    | None -> error_json 400 "missing ?base=<study image> parameter"
    | Some base_name -> (
        match image_of_name base_name with
        | None -> error_json 400 ("unknown study image: " ^ base_name)
        | Some base -> (
            let name =
              match List.assoc_opt "name" query with
              | Some n when n <> "" -> n
              | _ -> "release"
            in
            let payload =
              match List.assoc_opt "kind" query with
              | Some "surface" -> `Surface body
              | _ -> `Image body
            in
            match Watch.ingest t.sv_watch ~base ~name payload with
            | Error m -> error_json 400 m
            | Ok r -> ok_json (Api.envelope (Watch.ingest_json r))))

(* the immediate (non-parked) answer: 200 with pending events, or an
   empty 204 — parking happens at the socket layer ([handle_conn]),
   which re-dispatches here on wakeup so both paths share one renderer *)
let watch_poll t id query =
  match Watch.find_sub t.sv_watch id with
  | None -> error_json 404 ("no such subscription: " ^ id)
  | Some _ -> (
      let since =
        match Option.bind (List.assoc_opt "since" query) int_of_string_opt with
        | Some n when n >= 0 -> n
        | _ -> 0
      in
      match Watch.events_after t.sv_watch ~sub:id ~since with
      | [] -> (204, "application/json", "")
      | events ->
          let cursor =
            List.fold_left (fun acc e -> max acc e.Watch.ev_seq) since events
          in
          ok_json
            (Api.envelope
               (Json.Obj
                  [
                    ("subscription", Json.String id);
                    ("since", Json.Int since);
                    ("cursor", Json.Int cursor);
                    ("events", Json.List (List.map Watch.event_json events));
                  ])))

(* ---- routing ------------------------------------------------------- *)

let percent_decode s =
  let len = String.length s in
  let b = Buffer.create len in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i < len then
      match s.[i] with
      | '%' when i + 2 < len -> (
          match (hex s.[i + 1], hex s.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char b (Char.chr ((hi * 16) + lo));
              go (i + 3)
          | _ ->
              Buffer.add_char b '%';
              go (i + 1))
      | '+' ->
          Buffer.add_char b ' ';
          go (i + 1)
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go 0;
  Buffer.contents b

let parse_query qs =
  String.split_on_char '&' qs
  |> List.filter_map (fun kv ->
         match Ds_util.Strutil.cut ~on:'=' kv with
         | None -> if kv = "" then None else Some (percent_decode kv, "")
         | Some (k, v) -> Some (percent_decode k, percent_decode v))

(* ---- /trace/recent ------------------------------------------------- *)

let trace_endpoint query =
  let limit =
    match Option.bind (List.assoc_opt "limit" query) int_of_string_opt with
    | Some n when n > 0 -> n
    | _ -> 100
  in
  let sps = Trace.recent ~limit () in
  ok_json
    (Api.envelope
       (Json.Obj
          [
            ("spans", Json.List (List.map Trace.span_json sps));
            ("dropped", Json.Int (Trace.drops ()));
          ]))

(* the request's own span plus every finished span whose ancestor chain
   reaches it; used for the ?trace=1 inline view of one request *)
let trace_descendants root_id =
  if root_id = 0 then []
  else begin
    let sps = Trace.spans () in
    let parent = Hashtbl.create 64 in
    List.iter (fun sp -> Hashtbl.replace parent sp.Trace.sp_id sp.Trace.sp_parent) sps;
    let reaches id =
      let rec go id depth =
        if depth > 64 || id = 0 then false
        else if id = root_id then true
        else match Hashtbl.find_opt parent id with Some p -> go p (depth + 1) | None -> false
      in
      go id 0
    in
    List.filter
      (fun sp -> sp.Trace.sp_id = root_id || reaches sp.Trace.sp_parent)
      sps
  end

let inject_trace root_id body =
  match Json.of_string body with
  | exception _ -> body
  | Json.Obj fields ->
      let sps = trace_descendants root_id in
      json_body
        (Json.Obj (fields @ [ ("trace", Json.List (List.map Trace.span_json sps)) ]))
  | _ -> body

(* satellite: the one mutation envelope shared by every POST endpoint —
   [{v; params; body}] is unwrapped here so the endpoints only ever see
   effective (params, body); a bare body passes through untouched *)
let with_mutation t query body f =
  match Api.parse_mutation body with
  | Error problems -> error_json ~diagnostics:problems 400 "invalid request envelope"
  | Ok m ->
      if m.Api.mu_enveloped then Metrics.incr t.sv_metrics "requests.enveloped";
      (* envelope params win over query-string duplicates (assoc finds
         the first binding) *)
      f t (m.Api.mu_params @ query) m.Api.mu_body

let dispatch t ~meth ~segs ~query ~body =
  Deadline.check ();
  match (meth, segs) with
  | "GET", [ "healthz" ] -> healthz t
  | "GET", [ "images" ] -> images t
  | "GET", [ "surface"; name ] -> surface_endpoint t name query
  | "GET", [ "diff"; a; b ] -> diff_endpoint t a b
  | "GET", [ "graph"; "deps"; sym ] -> graph_query_endpoint t `Deps sym query
  | "GET", [ "graph"; "rdeps"; sym ] -> graph_query_endpoint t `Rdeps sym query
  | "GET", [ "graph"; "blast"; sym ] -> graph_blast_endpoint t sym query
  | "POST", [ "mismatch" ] -> with_mutation t query body mismatch_endpoint
  | "POST", [ "verify" ] -> with_mutation t query body verify_endpoint
  | "POST", [ "subscriptions" ] -> with_mutation t query body subscriptions_create
  | "GET", [ "subscriptions" ] -> subscriptions_list t
  | "GET", [ "subscriptions"; id ] -> subscription_get t id
  | "DELETE", [ "subscriptions"; id ] -> subscription_delete t id
  | "POST", [ "watch"; "ingest" ] -> watch_ingest t query body
  | "GET", [ "watch"; id ] -> watch_poll t id query
  | "GET", [ "metrics" ] -> metrics_endpoint t
  | "GET", [ "trace"; "recent" ] -> trace_endpoint query
  | ( _,
      ( [ "healthz" ] | [ "images" ] | [ "surface"; _ ] | [ "diff"; _; _ ]
      | [ "graph"; ("deps" | "rdeps" | "blast"); _ ]
      | [ "metrics" ] | [ "trace"; "recent" ] ) ) ->
      error_json 405 ("method not allowed: " ^ meth)
  | _, [ "mismatch" ] -> error_json 405 "POST the BPF object bytes to /mismatch"
  | _, [ "verify" ] -> error_json 405 "POST the BPF object bytes to /verify"
  | _, [ "subscriptions" ] ->
      error_json 405 "POST a depset to /subscriptions, or GET to list"
  | _, [ "subscriptions"; _ ] -> error_json 405 "GET or DELETE /subscriptions/<id>"
  | _, [ "watch"; "ingest" ] ->
      error_json 405 "POST the release image to /watch/ingest?base=<image>"
  | _, [ "watch"; _ ] -> error_json 405 "GET /watch/<sub-id>?since=<cursor>"
  | _ ->
      error_json 404
        "no such endpoint (healthz, images, surface, diff, graph/deps, graph/rdeps, \
         graph/blast, mismatch, verify, subscriptions, watch/ingest, watch/<sub-id>, \
         metrics, trace/recent; all also under /v1)"

let route_label segs =
  match segs with
  | [ "healthz" ] -> "/healthz"
  | [ "images" ] -> "/images"
  | "surface" :: _ -> "/surface"
  | "diff" :: _ -> "/diff"
  | "graph" :: _ -> "/graph"
  | [ "mismatch" ] -> "/mismatch"
  | [ "verify" ] -> "/verify"
  | [ "metrics" ] -> "/metrics"
  | "subscriptions" :: _ -> "/subscriptions"
  | "watch" :: _ -> "/watch"
  | "trace" :: _ -> "/trace"
  | _ -> "/other"

(* Only responses that are pure functions of (segs, query, body,
   generation) are cacheable: healthz/metrics/trace bodies report live
   counters, and ?trace=1 inlines the current request's own spans.
   POST /verify qualifies — its answer is a function of the posted
   bytes, which enter the key as a content digest. *)
let cacheable_route ~meth ~segs ~query =
  (match (meth, segs) with
  | ( "GET",
      ( [ "images" ] | [ "surface"; _ ] | [ "diff"; _; _ ]
      | [ "graph"; ("deps" | "rdeps" | "blast"); _ ] ) ) ->
      true
  | "POST", [ "verify" ] -> true
  | _ -> false)
  && List.assoc_opt "trace" query <> Some "1"

let cache_key t ~segs ~query ~body =
  let b = Buffer.create 64 in
  Buffer.add_string b (string_of_int (Atomic.get t.sv_generation));
  List.iter
    (fun s ->
      Buffer.add_char b '/';
      Buffer.add_string b s)
    segs;
  (* normalized params: order-insensitive *)
  List.iter
    (fun (k, v) ->
      Buffer.add_char b '?';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v)
    (List.sort compare query);
  (* request bodies (POST /verify) participate by digest: repeat posts
     of the same object bytes share one cached response *)
  if String.length body > 0 then begin
    Buffer.add_char b '#';
    Buffer.add_string b (Ds_verify.Verify.digest body)
  end;
  Buffer.contents b

(* the announced retirement date for the unprefixed legacy aliases *)
let sunset_date = "Thu, 01 Jul 2027 00:00:00 GMT"

let etag_of_body body =
  let h = Store.Hash.create () in
  Store.Hash.string h body;
  "\"" ^ Store.Hash.hex h ^ "\""

(* RFC 9110 If-None-Match: "*" or a comma-separated list of entity tags *)
let etag_matches header etag =
  String.trim header = "*"
  || List.exists (fun tok -> String.trim tok = etag) (String.split_on_char ',' header)

let handle_request ?(headers = []) ?pressure t ~meth ~target ~body =
  let path, query =
    match Ds_util.Strutil.cut ~on:'?' target with
    | None -> (target, [])
    | Some (path, qs) -> (path, parse_query qs)
  in
  let segs =
    String.split_on_char '/' path |> List.filter (fun s -> s <> "") |> List.map percent_decode
  in
  (* /v1/<route> and the bare legacy <route> share one handler (and one
     cached body), which makes the byte-identical-alias guarantee
     structural rather than something each endpoint re-implements *)
  let is_v1 = match segs with "v1" :: _ -> true | _ -> false in
  let segs = match segs with "v1" :: rest -> rest | segs -> segs in
  let label = route_label segs in
  let legacy_hit = (not is_v1) && segs <> [] in
  if legacy_hit then Metrics.incr t.sv_metrics "http.legacy_hits";
  Metrics.incr t.sv_metrics "requests_total";
  let t0 = Unix.gettimeofday () in
  let trace_id = ref 0 in
  let retry_after = ref None in
  let status, ctype, rbody, etag =
    Trace.span ~name:"serve.request" ~attrs:[ ("method", meth); ("route", label) ]
      (fun () ->
        trace_id := Trace.current_id ();
        try
          (* the per-request compute budget; Par.submit carries it onto
             any pool fan-out the handler performs *)
          Deadline.with_timeout ~label:"serve.handle" t.sv_limits.li_handle_deadline_s
          @@ fun () ->
          if legacy_hit && not t.sv_legacy then
            (* sunset enforced: the unprefixed aliases are gone, and the
               404 must precede the cache (legacy and /v1 share keys) *)
            let status, ctype, rbody =
              error_json 404 ("legacy route disabled: use /v1" ^ path)
            in
            (status, ctype, rbody, None)
          else if not (cacheable_route ~meth ~segs ~query) then
            let status, ctype, rbody = dispatch t ~meth ~segs ~query ~body in
            (status, ctype, rbody, None)
          else begin
            (* external store maintenance must not leave stale bytes in
               the response cache — cheap throttled poll, see
               [revalidate_store] *)
            revalidate_throttled t;
            let key = cache_key t ~segs ~query ~body in
            match Respcache.find t.sv_cache key with
            | Some e ->
                Metrics.incr t.sv_metrics "cache.hit";
                (e.Respcache.e_status, e.Respcache.e_ctype, e.Respcache.e_body,
                 Some (e.Respcache.e_etag, "hit"))
            | None ->
                Metrics.incr t.sv_metrics "cache.miss";
                let status, ctype, rbody = dispatch t ~meth ~segs ~query ~body in
                if status <> 200 then (status, ctype, rbody, None)
                else begin
                  let etag = etag_of_body rbody in
                  let evicted =
                    Respcache.add t.sv_cache key
                      { Respcache.e_status = status; e_ctype = ctype; e_body = rbody;
                        e_etag = etag }
                  in
                  for _ = 1 to evicted do Metrics.incr t.sv_metrics "cache.evict" done;
                  (status, ctype, rbody, Some (etag, "miss"))
                end
          end
        with
        | Deadline.Expired (_, over) ->
            (* the handler ran out of its budget: overload, not a bug —
               tell the client when to come back, free the worker *)
            Metrics.incr t.sv_metrics "overload.deadline";
            let ra = Admission.retry_after t.sv_adm in
            retry_after := Some ra;
            Trace.span ~name:"serve.timeout"
              ~attrs:
                [
                  ("pressure", "deadline"); ("route", label);
                  ("over_ms", Printf.sprintf "%.0f" (over *. 1000.));
                ]
              (fun () -> ());
            let status, ctype, rbody =
              error_json 503
                (Printf.sprintf "deadline exceeded after %.0fms"
                   (t.sv_limits.li_handle_deadline_s *. 1000.))
            in
            (status, ctype, rbody, None)
        | e ->
            let status, ctype, rbody = error_json 500 ("internal error: " ^ Printexc.to_string e) in
            (status, ctype, rbody, None))
  in
  let rbody =
    if List.assoc_opt "trace" query = Some "1" && ctype = "application/json" then
      inject_trace !trace_id rbody
    else rbody
  in
  (* conditional requests: a matching If-None-Match turns the response
     into an empty-body 304 carrying the same ETag — the warm client
     path pays for headers, never for a multi-MB body *)
  let status, rbody =
    match (etag, List.assoc_opt "if-none-match" headers) with
    | Some (tag, _), Some header when etag_matches header tag ->
        Metrics.incr t.sv_metrics "cache.notmod";
        (304, "")
    | _ -> (status, rbody)
  in
  Metrics.record t.sv_metrics label (Unix.gettimeofday () -. t0);
  Metrics.incr t.sv_metrics ("requests." ^ label);
  if status >= 400 then Metrics.incr t.sv_metrics ("errors." ^ label);
  let resp_headers =
    match etag with
    | None -> [ ("x-depsurf-trace", string_of_int !trace_id) ]
    | Some (tag, state) ->
        [
          ("x-depsurf-trace", string_of_int !trace_id);
          ("ETag", tag);
          ("x-depsurf-cache", state);
        ]
  in
  let resp_headers =
    match !retry_after with
    | Some ra -> ("Retry-After", string_of_int ra) :: resp_headers
    | None -> resp_headers
  in
  (* admission pressure at accept time rides on the response so clients
     can back off before being shed *)
  let resp_headers =
    match pressure with
    | Some sev -> ("x-depsurf-pressure", Diag.severity_to_string sev) :: resp_headers
    | None -> resp_headers
  in
  (* satellite: unprefixed legacy spellings still answer (byte-identical
     body) but are marked for retirement, RFC 8594-style *)
  let resp_headers =
    if legacy_hit && t.sv_legacy then
      ("Deprecation", "true") :: ("Sunset", sunset_date) :: resp_headers
    else resp_headers
  in
  (status, ctype, resp_headers, rbody)

(* ---- HTTP over sockets --------------------------------------------- *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let reason_of = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 304 -> "Not Modified"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

(* head and body go out as two writes: the old [Printf.sprintf "...%s"]
   re-copied every multi-MB body into the header string on every request *)
let send_response fd status ctype extra_headers body =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n" status
       (reason_of status) ctype (String.length body));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k;
      Buffer.add_string b ": ";
      Buffer.add_string b v;
      Buffer.add_string b "\r\n")
    extra_headers;
  Buffer.add_string b "Connection: close\r\n\r\n";
  write_all fd (Buffer.contents b) 0 (Buffer.length b);
  write_all fd body 0 (String.length body)

let max_header_bytes = 65536
let max_body_bytes = 16 * 1024 * 1024

exception Bad_request of string

(* oversized input carries its canonical status: 431 for the header
   block, 413 for the body *)
exception Too_large of int * string

(* the whole-receive deadline fired (stalled or trickling client) *)
exception Timed_out of string

module Slice = Ds_util.Bytesio.Slice

(* A growing receive buffer that scans for the \r\n\r\n head terminator
   incrementally — each byte is examined once, instead of re-walking a
   [Buffer.contents] copy of everything received after every read. *)
type recv_buf = { mutable rb_data : Bytes.t; mutable rb_len : int }

let recv_create n = { rb_data = Bytes.create n; rb_len = 0 }

let recv_read rb fd ~on_eof =
  if rb.rb_len = Bytes.length rb.rb_data then begin
    let b = Bytes.create (2 * Bytes.length rb.rb_data) in
    Bytes.blit rb.rb_data 0 b 0 rb.rb_len;
    rb.rb_data <- b
  end;
  let n = Unix.read fd rb.rb_data rb.rb_len (Bytes.length rb.rb_data - rb.rb_len) in
  if n = 0 then on_eof ();
  rb.rb_len <- rb.rb_len + n

(* raise once the whole-receive deadline has passed: SO_RCVTIMEO covers
   a fully stalled peer, this covers the trickler that keeps each
   individual read alive while never finishing the request *)
let deadline_guard ?deadline what =
  match deadline with
  | Some at when Unix.gettimeofday () > at -> raise (Timed_out what)
  | _ -> ()

(* index of the head terminator, reading as needed; scanning resumes
   where the previous read left off *)
let recv_head ?deadline rb fd ~too_large ~on_eof =
  let rec find from =
    let b = rb.rb_data in
    let limit = rb.rb_len - 3 in
    let rec go i =
      if i >= limit then None
      else if
        Bytes.unsafe_get b i = '\r'
        && Bytes.unsafe_get b (i + 1) = '\n'
        && Bytes.unsafe_get b (i + 2) = '\r'
        && Bytes.unsafe_get b (i + 3) = '\n'
      then Some i
      else go (i + 1)
    in
    match go from with
    | Some i ->
        (* over-cap heads are rejected even when the terminator arrived
           in the same read burst as the overflow *)
        if i + 4 > max_header_bytes then too_large ();
        i
    | None ->
        if rb.rb_len > max_header_bytes then too_large ();
        deadline_guard ?deadline "timed out reading request headers";
        let prev = rb.rb_len in
        recv_read rb fd ~on_eof;
        find (max 0 (prev - 3))
  in
  find 0

(* read [need] body bytes into place: the prefix already received past
   the head, then straight [Unix.read]s into the result buffer — no
   intermediate Buffer or per-chunk copies *)
let recv_body ?deadline rb fd ~body_start ~need ~on_eof =
  if need = 0 then ""
  else begin
    let b = Bytes.create need in
    let have = min (rb.rb_len - body_start) need in
    Bytes.blit rb.rb_data body_start b 0 have;
    let got = ref have in
    while !got < need do
      deadline_guard ?deadline "timed out reading request body";
      let n = Unix.read fd b !got (need - !got) in
      if n = 0 then on_eof ();
      got := !got + n
    done;
    Bytes.unsafe_to_string b
  end

(* Single pass over a head block: first line plus (lowercased-name,
   trimmed-value) pairs, one allocation per name and per value — the
   old parser built 3+ intermediate strings per header line
   (split_on_char + strip_cr + String.sub + lowercase + trim). Lines
   are split on '\n' with an optional trailing '\r', preserving the
   historical lenient behaviour (pinned by the golden e2e test). *)
let parse_head head =
  let hdr_end = String.length head in
  let line_at i =
    let j =
      match String.index_from_opt head i '\n' with Some j when j < hdr_end -> j | _ -> hdr_end
    in
    let stop = if j > i && head.[j - 1] = '\r' then j - 1 else j in
    (Slice.make head ~pos:i ~len:(stop - i), j + 1)
  in
  let first, next = line_at 0 in
  let headers = ref [] in
  let i = ref next in
  while !i < hdr_end do
    let line, next = line_at !i in
    (match Slice.index_opt line ':' with
    | None -> ()
    | Some c ->
        let name = Slice.lowercase_string (Slice.sub line ~pos:0 ~len:c) in
        let value =
          Slice.to_string
            (Slice.trim (Slice.sub line ~pos:(c + 1) ~len:(Slice.length line - c - 1)))
        in
        headers := (name, value) :: !headers);
    i := next
  done;
  (first, List.rev !headers)

(* read one request: request line, headers, Content-Length body. The
   deadline bounds the whole receive; a socket-level timeout
   (SO_RCVTIMEO, surfacing as EAGAIN) is folded into the same 408. *)
let recv_request ?deadline fd =
  let rb = recv_create 8192 in
  let on_eof () = raise (Bad_request "connection closed before headers") in
  let hdr_end =
    recv_head ?deadline rb fd ~on_eof ~too_large:(fun () ->
        raise (Too_large (431, "request headers exceed 64KiB")))
  in
  let request_line, headers = parse_head (Bytes.sub_string rb.rb_data 0 hdr_end) in
  let meth, target =
    match Slice.index_opt request_line ' ' with
    | None ->
        raise (Bad_request ("bad request line: " ^ Slice.to_string request_line))
    | Some i ->
        let rest =
          Slice.sub request_line ~pos:(i + 1) ~len:(Slice.length request_line - i - 1)
        in
        let target =
          match Slice.index_opt rest ' ' with
          | None -> rest
          | Some j -> Slice.sub rest ~pos:0 ~len:j
        in
        (Slice.to_string (Slice.sub request_line ~pos:0 ~len:i), Slice.to_string target)
  in
  let content_length =
    match List.assoc_opt "content-length" headers with
    | None -> 0
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 0 && n <= max_body_bytes -> n
        | Some n when n > max_body_bytes ->
            raise (Too_large (413, Printf.sprintf "request body of %d bytes exceeds 16MiB" n))
        | _ -> raise (Bad_request ("bad content-length: " ^ v)))
  in
  let body =
    recv_body ?deadline rb fd ~body_start:(hdr_end + 4) ~need:content_length
      ~on_eof:(fun () -> raise (Bad_request "connection closed before body"))
  in
  (meth, target, headers, body)

(* every rejection the socket layer produces is the same structured
   envelope the routed endpoints answer with — chaos clients must never
   see a bare text error *)
let send_reject t fd status msg =
  let status, ctype, body = error_json status msg in
  try send_response fd status ctype [] body
  with Unix.Unix_error _ -> Metrics.incr t.sv_metrics "errors.io"

(* ---- long-poll parking lot ----------------------------------------- *)

(* Parking happens at the socket layer, not by blocking a handler: on a
   1-core host the pool has no worker domains at all and the accept-loop
   domain runs handlers inline, so a handler that slept for [wait]
   seconds would wedge the whole server. Instead the connection's fd
   moves into [sv_parked] (keeping its admission slot — parked pollers
   are real in-flight work the shed limit must see) and is woken by the
   {!Watch.on_change} listener, the accept loop's periodic sweep, or the
   drain on [stop]. Delivery re-enters [handle_request], so a parked
   poller and an immediate one produce byte-identical responses. *)

let park_cap t = max 1 (t.sv_limits.li_max_inflight / 2)

(* a parked long-poll client sends nothing more on the socket: any
   readability (EOF or stray bytes) means it is gone *)
let parked_disconnected fd =
  match Unix.select [ fd ] [] [] 0. with
  | exception Unix.Unix_error _ -> true
  | [], _, _ -> false
  | _ :: _, _, _ -> true

let finish_parked t (p : parked) =
  Admission.release t.sv_adm ~service_s:(Unix.gettimeofday () -. p.pk_admitted_at);
  try Unix.close p.pk_fd with Unix.Unix_error _ -> ()

let deliver_parked t (p : parked) =
  Fun.protect
    ~finally:(fun () -> finish_parked t p)
    (fun () ->
      let status, ctype, rheaders, rbody =
        handle_request t ?pressure:p.pk_pressure ~headers:p.pk_headers ~meth:"GET"
          ~target:p.pk_target ~body:""
      in
      Metrics.incr t.sv_metrics (if status = 200 then "watch.notify" else "watch.timeout");
      try send_response p.pk_fd status ctype rheaders rbody
      with Unix.Unix_error _ -> Metrics.incr t.sv_metrics "errors.io")

(* Wake every parked poller whose answer is ready: events past its
   cursor, its deadline passed, its subscription deleted, or ~force
   (drain — everyone leaves with a clean 204/200). The lot is detached
   under the mutex and survivors merged back, so concurrent sweepers
   (ingest listener vs accept loop) each own a disjoint set. *)
let sweep_parked ?(force = false) t =
  let now = Unix.gettimeofday () in
  Mutex.lock t.sv_park_mu;
  let all = !(t.sv_parked) in
  t.sv_parked := [];
  Mutex.unlock t.sv_park_mu;
  if all <> [] then begin
    let dead, live = List.partition (fun p -> parked_disconnected p.pk_fd) all in
    let ready, keep =
      List.partition
        (fun (p : parked) ->
          force || now >= p.pk_expiry
          || Watch.find_sub t.sv_watch p.pk_sub = None
          || Watch.events_after t.sv_watch ~sub:p.pk_sub ~since:p.pk_since <> [])
        live
    in
    Mutex.lock t.sv_park_mu;
    t.sv_parked := keep @ !(t.sv_parked);
    Mutex.unlock t.sv_park_mu;
    List.iter
      (fun p ->
        Metrics.incr t.sv_metrics "watch.disconnect";
        finish_parked t p)
      dead;
    List.iter (fun p -> deliver_parked t p) ready
  end

(* does this request ask to be parked? GET /v1/watch/<id>?wait=<s>, with
   the same legacy gating as the routed path *)
let park_candidate t ~meth ~target =
  if meth <> "GET" then None
  else
    let path, query =
      match Ds_util.Strutil.cut ~on:'?' target with
      | None -> (target, [])
      | Some (path, qs) -> (path, parse_query qs)
    in
    let segs =
      String.split_on_char '/' path |> List.filter (fun s -> s <> "") |> List.map percent_decode
    in
    let is_v1, segs =
      match segs with "v1" :: rest -> (true, rest) | segs -> (false, segs)
    in
    if (not is_v1) && not t.sv_legacy then None
    else
      match segs with
      | [ "watch"; id ] when id <> "ingest" -> (
          match Option.bind (List.assoc_opt "wait" query) float_of_string_opt with
          | Some w when w > 0. ->
              let since =
                match Option.bind (List.assoc_opt "since" query) int_of_string_opt with
                | Some n when n >= 0 -> n
                | _ -> 0
              in
              Some (id, since, w)
          | _ -> None)
      | _ -> None

(* true = the fd now belongs to the lot (the caller must not close it);
   false = answer immediately. The immediate path covers every refusal:
   events already pending (200), unknown sub (404), lot full or draining
   (204 now — wait degrades to zero rather than erroring). *)
let try_park t ~fd ~pressure ~admitted_at ~sub ~since ~wait ~target ~headers =
  if Atomic.get t.sv_draining then false
  else if Watch.find_sub t.sv_watch sub = None then false
  else if Watch.events_after t.sv_watch ~sub ~since <> [] then false
  else if parked_count t >= park_cap t then begin
    Metrics.incr t.sv_metrics "watch.park_reject";
    false
  end
  else begin
    (* the park deadline is bounded by the same per-request budget every
       handler gets *)
    let wait = Float.min wait t.sv_limits.li_handle_deadline_s in
    let p =
      {
        pk_fd = fd;
        pk_sub = sub;
        pk_since = since;
        pk_target = target;
        pk_headers = headers;
        pk_pressure = pressure;
        pk_admitted_at = admitted_at;
        pk_expiry = Unix.gettimeofday () +. wait;
      }
    in
    Mutex.lock t.sv_park_mu;
    t.sv_parked := p :: !(t.sv_parked);
    Mutex.unlock t.sv_park_mu;
    Metrics.incr t.sv_metrics "watch.parked";
    (* race guard: an ingest (or stop) between the emptiness check and
       the insert would have swept before we were in the lot *)
    if
      Atomic.get t.sv_draining
      || Watch.events_after t.sv_watch ~sub ~since <> []
    then sweep_parked t;
    true
  end

let handle_conn t ?pressure ~admitted_at fd =
  let li = t.sv_limits in
  (* the read deadline starts at worker pickup (the client is not
     penalised for our queue), but the EWMA behind Retry-After measures
     the full slot hold since admission — pool queue wait included, which
     dominates exactly when the estimate matters *)
  let t0 = Unix.gettimeofday () in
  (* set when the fd is handed to the parking lot: slot release and
     close then belong to the sweeper, not to this worker *)
  let parked = ref false in
  Fun.protect
    ~finally:(fun () ->
      (* the admission slot is given back on every path — including
         rejections, timeouts and handler exceptions — and the fd is
         closed exactly once *)
      if not !parked then begin
        Admission.release t.sv_adm ~service_s:(Unix.gettimeofday () -. admitted_at);
        try Unix.close fd with Unix.Unix_error _ -> ()
      end)
    (fun () ->
      (* a stuck or byte-dribbling client must not pin a pool worker:
         per-read timeouts at the socket, a whole-receive deadline above
         them, and a bounded send *)
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO li.li_read_timeout_s
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO li.li_write_timeout_s
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      match recv_request ~deadline:(t0 +. li.li_read_timeout_s) fd with
      | exception Timed_out m ->
          Metrics.incr t.sv_metrics "errors.timeout";
          Trace.span ~name:"serve.timeout" ~attrs:[ ("pressure", "read"); ("error", m) ]
            (fun () -> ());
          send_reject t fd 408 m
      | exception Too_large (status, m) ->
          Metrics.incr t.sv_metrics "errors.protocol";
          send_reject t fd status m
      | exception Bad_request m ->
          Metrics.incr t.sv_metrics "errors.protocol";
          send_reject t fd 400 ("bad request: " ^ m)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
          (* SO_RCVTIMEO fired with nothing mid-flight to classify *)
          Metrics.incr t.sv_metrics "errors.timeout";
          Trace.span ~name:"serve.timeout"
            ~attrs:[ ("pressure", "read"); ("error", "socket read timed out") ]
            (fun () -> ());
          send_reject t fd 408 "timed out reading request"
      | exception Unix.Unix_error _ -> Metrics.incr t.sv_metrics "errors.io"
      | meth, target, headers, body -> (
          (match park_candidate t ~meth ~target with
          | Some (sub, since, wait) when String.length body = 0 ->
              parked :=
                try_park t ~fd ~pressure ~admitted_at ~sub ~since ~wait ~target ~headers
          | _ -> ());
          if not !parked then
            let status, ctype, rheaders, rbody =
              handle_request t ?pressure ~headers ~meth ~target ~body
            in
            try send_response fd status ctype rheaders rbody
            with Unix.Unix_error _ -> Metrics.incr t.sv_metrics "errors.io"))

type addr = Unix_sock of string | Tcp of string * int

type handle = {
  h_sock : Unix.file_descr;
  h_addr : addr;
  h_stop : bool Atomic.t;
  mutable h_loop : unit Domain.t option;
  h_path : string option;
  h_serve : t;  (** for the drain on [stop]: admission depth + pool *)
}

(* One admitted connection: log pressure transitions, count the
   degraded band, hand the handler (tagged with its pressure) to the
   pool. One shed connection: answer 503 + Retry-After inline — the
   write is small and bounded by SO_SNDTIMEO, so the accept loop is
   never parked on a slow victim. *)
let place_conn t fd =
  match Admission.admit t.sv_adm with
  | Admission.Shed ra ->
      Metrics.incr t.sv_metrics "overload.shed";
      Trace.span ~name:"serve.shed"
        ~attrs:[ ("pressure", "fatal"); ("retry_after_s", string_of_int ra) ]
        (fun () ->
          (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          let status, ctype, body =
            error_json 503
              (Printf.sprintf "overloaded: %d connections in flight (limit %d)"
                 (Admission.inflight t.sv_adm) (Admission.limit t.sv_adm))
          in
          (try send_response fd status ctype [ ("Retry-After", string_of_int ra) ] body
           with Unix.Unix_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ())
  | Admission.Admit (sev, transition) ->
      let admitted_at = Unix.gettimeofday () in
      Metrics.incr t.sv_metrics "admission.admitted";
      (match sev with
      | Some Diag.Degraded -> Metrics.incr t.sv_metrics "overload.degraded"
      | Some Diag.Warning -> Metrics.incr t.sv_metrics "overload.warning"
      | _ -> ());
      if transition then
        Logs.warn (fun m ->
            m "serve: admission pressure %s (%d/%d in flight)"
              (match sev with Some s -> Diag.severity_to_string s | None -> "clear")
              (Admission.inflight t.sv_adm) (Admission.limit t.sv_adm));
      let pressure = match sev with Some Diag.Degraded -> Some Diag.Degraded | _ -> None in
      (try ignore (Par.submit t.sv_pool (fun () -> handle_conn t ?pressure ~admitted_at fd))
       with Invalid_argument _ ->
         (* pool shut down under us (stop race): give the slot back and
            close the fd instead of leaking both and killing the accept
            domain *)
         Admission.release t.sv_adm ~service_s:(Unix.gettimeofday () -. admitted_at);
         (try Unix.close fd with Unix.Unix_error _ -> ()))

(* drain the listen backlog in one burst (the listener is non-blocking):
   admission sees the true pending depth instead of one connection per
   select round, which is what makes shedding engage under a stampede *)
let rec accept_burst t h budget =
  if budget > 0 then
    match Unix.accept h.h_sock with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        place_conn t fd;
        accept_burst t h (budget - 1)

let rec accept_loop t h =
  if not (Atomic.get h.h_stop) then begin
    (* The accept loop runs on its own domain, outside the pool's
       execution budget (it spends its life blocked in [select], which
       releases the runtime lock, so it costs the GC nothing). Draining
       here keeps the server live on any host: spare pool workers race
       us for the queued connection handlers, and when there are none
       (e.g. a 1-core host spawns no workers at all) we handle the
       connections ourselves between selects. *)
    while Par.drain_one t.sv_pool do () done;
    (* wake parked long-pollers whose deadline passed or whose client
       hung up — the on_change listener covers the fast (event) path *)
    sweep_parked t;
    (* select with a short timeout so [stop] is honoured promptly even
       with no incoming connections *)
    match Unix.select [ h.h_sock ] [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t h
    | [], _, _ -> accept_loop t h
    | _ :: _, _, _ ->
        accept_burst t h 128;
        accept_loop t h
  end

let start t addr =
  (* kept for API stability: the accept loop now runs on its own domain,
     but a serving pool sized for a single task has no headroom for the
     connection handlers it queues *)
  if Par.jobs t.sv_pool < 2 then
    invalid_arg "Serve.start: the pool needs at least 2 workers (one runs the accept loop)";
  let domain, sockaddr, path =
    match addr with
    | Unix_sock p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p, Some p)
    | Tcp (host, port) ->
        (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port), None)
  in
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true
  | Unix_sock p -> if Sys.file_exists p then try Unix.unlink p with Unix.Unix_error _ -> ());
  (try
     Unix.bind sock sockaddr;
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let bound =
    match addr with
    | Tcp (host, _) -> (
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, port) -> Tcp (host, port)
        | _ -> addr)
    | a -> a
  in
  (* non-blocking listener: the accept loop drains the backlog in
     bursts after each select instead of one connection per round *)
  Unix.set_nonblock sock;
  let h =
    {
      h_sock = sock;
      h_addr = bound;
      h_stop = Atomic.make false;
      h_loop = None;
      h_path = path;
      h_serve = t;
    }
  in
  Atomic.set t.sv_draining false;
  (* one listener per serve handle, however many start/stop cycles it
     sees: ingests wake parked pollers directly, which is what holds
     notification latency to sub-milliseconds *)
  if Atomic.compare_and_set t.sv_notify false true then
    Watch.on_change t.sv_watch (fun () -> sweep_parked t);
  h.h_loop <- Some (Domain.spawn (fun () -> accept_loop t h));
  h

let bound_addr h = h.h_addr

(* Graceful drain, in strict order: (1) stop accepting — the loop
   domain exits, so nothing new is admitted; (2) finish every admitted
   connection within the drain deadline, running queued handlers
   ourselves so even a workerless 1-core pool completes them; (3) close
   the listener last and unlink the socket path. A connection the
   server accepted is therefore always answered, which is the
   zero-dropped-connections contract the tests and bench assert. *)
let stop h =
  if not (Atomic.get h.h_stop) then begin
    let t = h.h_serve in
    Atomic.set h.h_stop true;
    (match h.h_loop with
    | Some d -> ( try Domain.join d with _ -> ())
    | None -> ());
    (* flush the parking lot before the drain loop: parked pollers hold
       admission slots, and the drain contract says every admitted
       connection is answered — they leave with a clean 204 (or a 200 if
       events raced in) *)
    Atomic.set t.sv_draining true;
    sweep_parked ~force:true t;
    let pending = Admission.inflight t.sv_adm in
    Trace.span ~name:"serve.drain"
      ~attrs:[ ("pressure", "drain"); ("inflight", string_of_int pending) ]
      (fun () ->
        let deadline = Unix.gettimeofday () +. t.sv_limits.li_drain_deadline_s in
        let rec drain () =
          if Admission.inflight t.sv_adm > 0 && Unix.gettimeofday () < deadline then begin
            if not (Par.drain_one t.sv_pool) then Unix.sleepf 0.002;
            drain ()
          end
        in
        drain ();
        let left = Admission.inflight t.sv_adm in
        if left > 0 then begin
          Metrics.incr t.sv_metrics ~by:left "drain.abandoned";
          Logs.warn (fun m ->
              m "serve: drain deadline passed with %d connections still in flight" left)
        end);
    (try Unix.close h.h_sock with Unix.Unix_error _ -> ());
    match h.h_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ()
  end

(* ---- client -------------------------------------------------------- *)

module Client = struct
  let request_full ?body ?(headers = []) ?(timeout_s = 30.) addr ~meth ~path =
    let domain, sockaddr =
      match addr with
      | Unix_sock p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
      | Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd sockaddr;
        (* a wedged or trickling server must not park the client forever *)
        (try
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        let payload = Option.value ~default:"" body in
        let req = Buffer.create 256 in
        Buffer.add_string req
          (Printf.sprintf "%s %s HTTP/1.1\r\nHost: depsurf\r\n" meth path);
        List.iter
          (fun (k, v) -> Buffer.add_string req (Printf.sprintf "%s: %s\r\n" k v))
          headers;
        if payload <> "" then
          Buffer.add_string req (Printf.sprintf "Content-Length: %d\r\n" (String.length payload));
        Buffer.add_string req "Connection: close\r\n\r\n";
        Buffer.add_string req payload;
        let req = Buffer.contents req in
        write_all fd req 0 (String.length req);
        (* parse the head region only — never split or copy the body
           along the way, and read it in 64 KiB chunks (the old client
           buffered 4 KiB at a time and then split the entire multi-MB
           response on '\n' to find the status line) *)
        let rb = recv_create 65536 in
        let on_eof () = failwith "malformed HTTP response (no header terminator)" in
        let hdr_end =
          recv_head rb fd ~on_eof ~too_large:(fun () -> failwith "response headers too large")
        in
        let status_line, resp_headers = parse_head (Bytes.sub_string rb.rb_data 0 hdr_end) in
        let status =
          let bad () = failwith "malformed HTTP status line" in
          match Slice.index_opt status_line ' ' with
          | None -> bad ()
          | Some i -> (
              let rest =
                Slice.sub status_line ~pos:(i + 1) ~len:(Slice.length status_line - i - 1)
              in
              let code =
                match Slice.index_opt rest ' ' with
                | None -> rest
                | Some j -> Slice.sub rest ~pos:0 ~len:j
              in
              match int_of_string_opt (Slice.to_string code) with
              | Some c -> c
              | None -> bad ())
        in
        let body_start = hdr_end + 4 in
        let rbody =
          match
            Option.bind (List.assoc_opt "content-length" resp_headers) int_of_string_opt
          with
          | Some need when need >= 0 ->
              recv_body rb fd ~body_start ~need ~on_eof:(fun () ->
                  failwith "connection closed before response body")
          | _ ->
              (* no Content-Length: drain to EOF — but bounded. The old
                 loop read forever against a trickling peer; cap the
                 bytes at the server's own body limit and the time at
                 [timeout_s]. *)
              let deadline = Unix.gettimeofday () +. timeout_s in
              let rec drain () =
                if rb.rb_len - body_start > max_body_bytes then
                  failwith "response body exceeds 16MiB with no Content-Length";
                if Unix.gettimeofday () > deadline then
                  failwith "timed out draining response body";
                match recv_read rb fd ~on_eof:(fun () -> raise Exit) with
                | () -> drain ()
                | exception Exit -> ()
              in
              drain ();
              Bytes.sub_string rb.rb_data body_start (rb.rb_len - body_start)
        in
        (status, resp_headers, rbody))

  let request ?body ?headers ?timeout_s addr ~meth ~path =
    let status, _, body = request_full ?body ?headers ?timeout_s addr ~meth ~path in
    (status, body)

  (* Capped exponential backoff with deterministic jitter, honouring a
     server-provided Retry-After. Only idempotent GETs are retried:
     anything else may have been applied by a server that died before
     answering, and replaying it is not the client's call to make. *)
  let retryable_error = function
    | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE | Unix.ENOENT | Unix.EAGAIN
    | Unix.EWOULDBLOCK | Unix.ETIMEDOUT ->
        true
    | _ -> false

  let backoff_delay ~prng ~base_ms ~cap_ms ~retry_after attempt =
    (* the cap bounds only our own exponential growth; a server-provided
       Retry-After is an explicit ask and is honoured in full — clamping
       it would send the herd back early during shedding *)
    let exp = Float.min cap_ms (base_ms *. (2. ** float_of_int attempt)) in
    let chosen =
      match retry_after with
      | Some ra_s -> Float.max (ra_s *. 1000.) exp
      | None -> exp
    in
    (* full jitter on the top half: [0.5c, 1.0c] spreads a thundering
       herd without ever retrying before half the intended delay *)
    chosen *. (0.5 +. Ds_util.Prng.float prng 0.5) /. 1000.

  let request_retry ?(headers = []) ?timeout_s ?(retries = 3) ?(base_ms = 50.)
      ?(cap_ms = 2000.) ?(seed = 0L) addr ~meth ~path =
    let prng = Ds_util.Prng.create seed in
    let attempt_once () = request_full ~headers ?timeout_s addr ~meth ~path in
    let rec go attempt =
      let retry ~retry_after =
        Unix.sleepf (backoff_delay ~prng ~base_ms ~cap_ms ~retry_after attempt);
        go (attempt + 1)
      in
      match attempt_once () with
      | (status, rheaders, _) as resp ->
          if status = 503 && meth = "GET" && attempt < retries then
            let retry_after =
              Option.bind (List.assoc_opt "retry-after" rheaders) float_of_string_opt
            in
            retry ~retry_after
          else resp
      | exception Unix.Unix_error (e, _, _) when meth = "GET" && attempt < retries && retryable_error e ->
          retry ~retry_after:None
    in
    go 0
end
